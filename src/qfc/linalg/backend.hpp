#pragma once

/// \file backend.hpp
/// Kernel-dispatch seam for the dense linear algebra every layer above
/// bottoms out in: Schmidt purity in `sfwm`, the qudit CGLMP/MUB stack,
/// `tomo::rrr_reconstruct`, and `quantum::measures`. Two backends ship:
///
///  - Reference: the original hand-rolled single-threaded loops. Always
///    available, exhaustively tested, the accuracy baseline.
///  - Blocked: cache-blocked GEMM with a transposed-B micro-kernel, and
///    round-robin ("chess tournament") parallel Jacobi eig / one-sided
///    Jacobi SVD on the shared qfc::parallel::WorkerPool (see
///    src/qfc/parallel/README.md). Every rotation round partitions
///    the matrix into disjoint row/column pairs, so the task-to-thread
///    assignment cannot change any floating-point operation order: results
///    are bitwise identical for every thread count (the same determinism
///    contract as detect::EventEngine).
///
/// Selection: set_default_backend() programmatically, or the
/// QFC_LINALG_BACKEND environment variable ("reference" | "blocked"),
/// consulted once at first dispatch. Mat<T>::operator*, hermitian_eig(),
/// svd(), and the spectral matrix functions all route through the active
/// backend, so consumers upgrade with zero call-site changes.
///
/// Adding a backend (e.g. BLAS/LAPACK): implement the Backend interface,
/// add a BackendKind enumerator, register the instance in backend(kind) and
/// the name in to_string()/parse_backend(). See src/qfc/linalg/README.md.

#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>
#include <vector>

#include "qfc/linalg/hermitian_eig.hpp"
#include "qfc/linalg/matrix.hpp"
#include "qfc/linalg/svd.hpp"

namespace qfc::linalg {

enum class BackendKind { Reference, Blocked };

/// Options forwarded to the Hermitian eigensolver kernels.
struct EigOptions {
  int max_sweeps = 64;
  bool want_vectors = true;
};

/// Abstract kernel set. Kernels assume pre-validated shapes (the public
/// entry points in matrix.hpp / hermitian_eig.hpp / svd.hpp validate);
/// eig kernels symmetrize their input, so round-off-level non-Hermiticity
/// is tolerated.
class Backend {
 public:
  virtual ~Backend() = default;
  virtual const char* name() const noexcept = 0;

  /// c = a * b; the caller provides c zero-initialized with conforming
  /// shape (kernels may accumulate into it or overwrite it).
  virtual void gemm(const RMat& a, const RMat& b, RMat& c) const = 0;
  virtual void gemm(const CMat& a, const CMat& b, CMat& c) const = 0;

  /// herk-style congruence v · diag(d) · v† — the rebuild step of every
  /// spectral matrix function. Result is Hermitian to round-off.
  virtual CMat scaled_congruence(const CMat& v, const RVec& d) const = 0;

  virtual EigResult hermitian_eig(const CMat& a, const EigOptions& opt) const = 0;
  virtual SvdResult svd(const CMat& a, int max_sweeps) const = 0;

  /// Kronecker (tensor) product out = a ⊗ b; the caller provides `out`
  /// sized (a.rows*b.rows) x (a.cols*b.cols). Every backend computes each
  /// element with the single multiply a(i,j)*b(k,l), so kron results are
  /// bitwise identical across backends and SIMD modes.
  virtual void kron(const RMat& a, const RMat& b, RMat& out) const;
  virtual void kron(const CMat& a, const CMat& b, CMat& out) const;

  /// Batch-of-matrices kernels. Entry i of the result corresponds to input
  /// i; dimensions may differ per entry (each matrix is an independent
  /// problem). The base-class defaults are plain serial loops over the
  /// per-matrix virtuals; the Blocked backend overrides them to fan out
  /// *across* matrices on the shared worker pool with a fixed
  /// matrix-to-task assignment (one task per index, results written to
  /// per-index slots), so batch results are bitwise identical to the
  /// per-matrix calls at any worker count.
  virtual std::vector<EigResult> hermitian_eig_batch(const std::vector<CMat>& as,
                                                     const EigOptions& opt) const;
  virtual std::vector<SvdResult> svd_batch(const std::vector<CMat>& as,
                                           int max_sweeps) const;
  virtual std::vector<CMat> gemm_batch(const std::vector<CMat>& as,
                                       const std::vector<CMat>& bs) const;
};

/// Active default backend (initialized from QFC_LINALG_BACKEND, else
/// Blocked — it wins on every benched kernel and dimension).
/// set_default_backend overrides for the rest of the process.
BackendKind default_backend();
void set_default_backend(BackendKind kind);

/// The active backend instance / a specific backend instance. Instances are
/// stateless singletons; both remain valid for the process lifetime, so
/// benches can time one against the other directly.
const Backend& backend();
const Backend& backend(BackendKind kind);

const char* to_string(BackendKind kind);

/// Worker threads used by the Blocked backend (0 = one per hardware thread,
/// the default; initial value also settable via QFC_LINALG_THREADS).
/// Changing the count never changes results — only wall-clock.
void set_backend_threads(unsigned n);
unsigned backend_threads();

/// The raw request last passed to set_backend_threads (or QFC_LINALG_THREADS
/// at startup): 0 means auto. Lets callers save/restore the setting without
/// collapsing "auto" to a concrete count.
unsigned backend_thread_request();

/// SIMD policy of the Blocked backend (see src/qfc/linalg/README.md).
/// Vector micro-kernels (AVX2 on x86-64, runtime-dispatched) are used when
/// the request is on AND the CPU supports them; the scalar fallback is
/// always compiled in. Initial request comes from QFC_LINALG_SIMD
/// ("off"/"0"/"false"/"scalar" disable; anything else, or unset, enables).
/// Rotation/kron kernels replicate the scalar complex arithmetic exactly
/// (mul/addsub, no FMA), so eig and kron are bitwise identical across SIMD
/// modes; the planar-FMA GEMM and the vectorized SVD Gram reductions are
/// relaxed (1e-10 parity across modes). Thread-count invariance is bitwise
/// within any fixed mode.
void set_simd_enabled(bool on);
/// True when the vector path is active (requested AND CPU-supported).
bool simd_enabled();
/// The raw on/off request, ignoring CPU support (for save/restore).
bool simd_request();

/// RAII: forces the Blocked backend's kernels on this thread to run their
/// parallel rounds inline instead of dispatching to the worker pool (the
/// arithmetic is unchanged, so results are bitwise identical). Batch
/// drivers that fan out across problems on the shared pool enter this
/// scope inside each task — nested pool use would deadlock. Nestable.
class SerialKernelScope {
 public:
  SerialKernelScope();
  ~SerialKernelScope();
  SerialKernelScope(const SerialKernelScope&) = delete;
  SerialKernelScope& operator=(const SerialKernelScope&) = delete;
};

/// Validated batch entry points, routed through the active backend like
/// hermitian_eig()/svd()/operator*. Entry i of the result corresponds to
/// input i; dimensions may differ per entry. Results are bitwise identical
/// to the equivalent serial loop of per-matrix calls.
std::vector<EigResult> hermitian_eig_batch(const std::vector<CMat>& as,
                                           const EigOptions& opt = {},
                                           double hermiticity_tol = 1e-9);
std::vector<RVec> hermitian_eigenvalues_batch(const std::vector<CMat>& as,
                                              int max_sweeps = 64);
std::vector<SvdResult> svd_batch(const std::vector<CMat>& as, int max_sweeps = 96);
std::vector<CMat> gemm_batch(const std::vector<CMat>& as, const std::vector<CMat>& bs);

namespace detail {

/// "reference" / "blocked" (case-insensitive) -> kind; nullopt otherwise.
std::optional<BackendKind> parse_backend(std::string_view name);

/// Complex Jacobi rotation parameters (c real, sp = sin·phase) for a pivot
/// with diagonal entries app/aqq and off-diagonal apq of magnitude mag > 0.
/// Single shared formula: every solver in every backend zeroes its pivot
/// with exactly the same arithmetic, which is what the cross-backend 1e-10
/// parity contract leans on.
struct JacobiParams {
  double c = 1.0;
  cplx sp{0, 0};
};
JacobiParams jacobi_params(double app, double aqq, cplx apq, double mag);

/// Sum of squared magnitudes of strictly off-diagonal elements.
double off_diag_norm2(const CMat& a);

/// Nominal flop count of an m x k by k x n product (2mkn real; 4x for
/// complex). Feeds the `linalg.<backend>.gemm.flops` obs counters.
std::uint64_t gemm_flops(std::size_t m, std::size_t k, std::size_t n, bool is_complex);

/// Nominal flop count of a kron with `out_elems` output elements (one
/// multiply per element; 6 real flops for complex). Feeds the
/// `linalg.<backend>.kron.flops` obs counters.
std::uint64_t kron_flops(std::size_t out_elems, bool is_complex);

/// Run fn(i) for every i in [0, count) with one task per index on the
/// Blocked backend's worker pool, each task inside a SerialKernelScope.
/// The fixed index-to-task assignment plus disjoint per-index outputs make
/// this bitwise deterministic at any worker count. Used by the Blocked
/// batch kernels and by higher-level batch drivers (tomo, qudit, sfwm).
/// Nested calls (from inside a task) degrade to a plain serial loop.
void parallel_batch(std::size_t count, const std::function<void(std::size_t)>& fn);

/// Convergence threshold on off_diag_norm2 for an n x n Hermitian matrix of
/// Frobenius norm `scale`.
double jacobi_stop_threshold(double scale, std::size_t n);

// Reference kernels: the original naive loops, kept as the always-available
// baseline and as the small-dimension fallback of the Blocked backend.
void reference_gemm(const RMat& a, const RMat& b, RMat& c);
void reference_gemm(const CMat& a, const CMat& b, CMat& c);
EigResult reference_hermitian_eig(const CMat& a, const EigOptions& opt);
SvdResult reference_svd(const CMat& a, int max_sweeps);
void reference_kron(const RMat& a, const RMat& b, RMat& out);
void reference_kron(const CMat& a, const CMat& b, CMat& out);

// Blocked kernels (blocked_backend.cpp).
void blocked_gemm(const RMat& a, const RMat& b, RMat& c);
void blocked_gemm(const CMat& a, const CMat& b, CMat& c);
EigResult blocked_hermitian_eig(const CMat& a, const EigOptions& opt);
SvdResult blocked_svd(const CMat& a, int max_sweeps);
void blocked_kron(const RMat& a, const RMat& b, RMat& out);
void blocked_kron(const CMat& a, const CMat& b, CMat& out);
std::vector<EigResult> blocked_hermitian_eig_batch(const std::vector<CMat>& as,
                                                   const EigOptions& opt);
std::vector<SvdResult> blocked_svd_batch(const std::vector<CMat>& as, int max_sweeps);
std::vector<CMat> blocked_gemm_batch(const std::vector<CMat>& as,
                                     const std::vector<CMat>& bs);

/// Shared eig finalization: read the (real) diagonal of the rotated matrix,
/// sort descending, permute the accumulated eigenvector columns alongside.
EigResult finalize_eig(const CMat& diagonalized, const CMat& vectors, bool want_vectors);

}  // namespace detail

}  // namespace qfc::linalg
