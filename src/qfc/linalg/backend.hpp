#pragma once

/// \file backend.hpp
/// Kernel-dispatch seam for the dense linear algebra every layer above
/// bottoms out in: Schmidt purity in `sfwm`, the qudit CGLMP/MUB stack,
/// `tomo::rrr_reconstruct`, and `quantum::measures`. Two backends ship:
///
///  - Reference: the original hand-rolled single-threaded loops. Always
///    available, exhaustively tested, the accuracy baseline.
///  - Blocked: cache-blocked GEMM with a transposed-B micro-kernel, and
///    round-robin ("chess tournament") parallel Jacobi eig / one-sided
///    Jacobi SVD on the shared qfc::parallel::WorkerPool (see
///    src/qfc/parallel/README.md). Every rotation round partitions
///    the matrix into disjoint row/column pairs, so the task-to-thread
///    assignment cannot change any floating-point operation order: results
///    are bitwise identical for every thread count (the same determinism
///    contract as detect::EventEngine).
///
/// Selection: set_default_backend() programmatically, or the
/// QFC_LINALG_BACKEND environment variable ("reference" | "blocked"),
/// consulted once at first dispatch. Mat<T>::operator*, hermitian_eig(),
/// svd(), and the spectral matrix functions all route through the active
/// backend, so consumers upgrade with zero call-site changes.
///
/// Adding a backend (e.g. BLAS/LAPACK): implement the Backend interface,
/// add a BackendKind enumerator, register the instance in backend(kind) and
/// the name in to_string()/parse_backend(). See src/qfc/linalg/README.md.

#include <cstdint>
#include <optional>
#include <string_view>

#include "qfc/linalg/hermitian_eig.hpp"
#include "qfc/linalg/matrix.hpp"
#include "qfc/linalg/svd.hpp"

namespace qfc::linalg {

enum class BackendKind { Reference, Blocked };

/// Options forwarded to the Hermitian eigensolver kernels.
struct EigOptions {
  int max_sweeps = 64;
  bool want_vectors = true;
};

/// Abstract kernel set. Kernels assume pre-validated shapes (the public
/// entry points in matrix.hpp / hermitian_eig.hpp / svd.hpp validate);
/// eig kernels symmetrize their input, so round-off-level non-Hermiticity
/// is tolerated.
class Backend {
 public:
  virtual ~Backend() = default;
  virtual const char* name() const noexcept = 0;

  /// c = a * b; the caller provides c zero-initialized with conforming
  /// shape (kernels may accumulate into it or overwrite it).
  virtual void gemm(const RMat& a, const RMat& b, RMat& c) const = 0;
  virtual void gemm(const CMat& a, const CMat& b, CMat& c) const = 0;

  /// herk-style congruence v · diag(d) · v† — the rebuild step of every
  /// spectral matrix function. Result is Hermitian to round-off.
  virtual CMat scaled_congruence(const CMat& v, const RVec& d) const = 0;

  virtual EigResult hermitian_eig(const CMat& a, const EigOptions& opt) const = 0;
  virtual SvdResult svd(const CMat& a, int max_sweeps) const = 0;
};

/// Active default backend (initialized from QFC_LINALG_BACKEND, else
/// Reference). set_default_backend overrides for the rest of the process.
BackendKind default_backend();
void set_default_backend(BackendKind kind);

/// The active backend instance / a specific backend instance. Instances are
/// stateless singletons; both remain valid for the process lifetime, so
/// benches can time one against the other directly.
const Backend& backend();
const Backend& backend(BackendKind kind);

const char* to_string(BackendKind kind);

/// Worker threads used by the Blocked backend (0 = one per hardware thread,
/// the default; initial value also settable via QFC_LINALG_THREADS).
/// Changing the count never changes results — only wall-clock.
void set_backend_threads(unsigned n);
unsigned backend_threads();

/// The raw request last passed to set_backend_threads (or QFC_LINALG_THREADS
/// at startup): 0 means auto. Lets callers save/restore the setting without
/// collapsing "auto" to a concrete count.
unsigned backend_thread_request();

namespace detail {

/// "reference" / "blocked" (case-insensitive) -> kind; nullopt otherwise.
std::optional<BackendKind> parse_backend(std::string_view name);

/// Complex Jacobi rotation parameters (c real, sp = sin·phase) for a pivot
/// with diagonal entries app/aqq and off-diagonal apq of magnitude mag > 0.
/// Single shared formula: every solver in every backend zeroes its pivot
/// with exactly the same arithmetic, which is what the cross-backend 1e-10
/// parity contract leans on.
struct JacobiParams {
  double c = 1.0;
  cplx sp{0, 0};
};
JacobiParams jacobi_params(double app, double aqq, cplx apq, double mag);

/// Sum of squared magnitudes of strictly off-diagonal elements.
double off_diag_norm2(const CMat& a);

/// Nominal flop count of an m x k by k x n product (2mkn real; 4x for
/// complex). Feeds the `linalg.<backend>.gemm.flops` obs counters.
std::uint64_t gemm_flops(std::size_t m, std::size_t k, std::size_t n, bool is_complex);

/// Convergence threshold on off_diag_norm2 for an n x n Hermitian matrix of
/// Frobenius norm `scale`.
double jacobi_stop_threshold(double scale, std::size_t n);

// Reference kernels: the original naive loops, kept as the always-available
// baseline and as the small-dimension fallback of the Blocked backend.
void reference_gemm(const RMat& a, const RMat& b, RMat& c);
void reference_gemm(const CMat& a, const CMat& b, CMat& c);
EigResult reference_hermitian_eig(const CMat& a, const EigOptions& opt);
SvdResult reference_svd(const CMat& a, int max_sweeps);

// Blocked kernels (blocked_backend.cpp).
void blocked_gemm(const RMat& a, const RMat& b, RMat& c);
void blocked_gemm(const CMat& a, const CMat& b, CMat& c);
EigResult blocked_hermitian_eig(const CMat& a, const EigOptions& opt);
SvdResult blocked_svd(const CMat& a, int max_sweeps);

/// Shared eig finalization: read the (real) diagonal of the rotated matrix,
/// sort descending, permute the accumulated eigenvector columns alongside.
EigResult finalize_eig(const CMat& diagonalized, const CMat& vectors, bool want_vectors);

}  // namespace detail

}  // namespace qfc::linalg
