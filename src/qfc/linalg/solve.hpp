#pragma once

/// \file solve.hpp
/// Direct solvers: LU with partial pivoting (complex), Cholesky (Hermitian
/// positive definite), inverse and determinant helpers.

#include "qfc/linalg/matrix.hpp"

namespace qfc::linalg {

struct LuDecomposition {
  CMat lu;                       ///< packed L (unit diag) and U factors
  std::vector<std::size_t> piv;  ///< row permutation
  int sign = 1;                  ///< permutation parity

  /// Solve A x = b for the A this decomposition was built from.
  CVec solve(const CVec& b) const;
  cplx determinant() const;
};

/// LU factorization with partial pivoting. Throws NumericalError when the
/// matrix is numerically singular.
LuDecomposition lu_decompose(const CMat& a);

/// Convenience: solve A x = b.
CVec solve(const CMat& a, const CVec& b);

/// Matrix inverse via LU. Throws NumericalError when singular.
CMat inverse(const CMat& a);

cplx determinant(const CMat& a);

/// Cholesky factor L (lower-triangular, A = L L†) of a Hermitian positive
/// definite matrix. Throws NumericalError when A is not positive definite.
CMat cholesky(const CMat& a);

/// Solve the real overdetermined least-squares problem min ||A x - b||_2
/// via Householder QR. Requires rows >= cols and full column rank.
RVec least_squares(const RMat& a, const RVec& b);

}  // namespace qfc::linalg
