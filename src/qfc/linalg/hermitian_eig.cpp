#include "qfc/linalg/hermitian_eig.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "qfc/linalg/error.hpp"

namespace qfc::linalg {
namespace {

/// Sum of squared magnitudes of strictly off-diagonal elements.
double off_diag_norm2(const CMat& a) {
  double s = 0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      if (i != j) s += std::norm(a(i, j));
  return s;
}

/// One cyclic Jacobi sweep on Hermitian `a`, accumulating rotations into `v`
/// when v != nullptr. Each rotation zeroes a(p,q) exactly.
void jacobi_sweep(CMat& a, CMat* v) {
  const std::size_t n = a.rows();
  for (std::size_t p = 0; p + 1 < n; ++p) {
    for (std::size_t q = p + 1; q < n; ++q) {
      const cplx apq = a(p, q);
      const double mag = std::abs(apq);
      if (mag < 1e-300) continue;

      // Phase so that e^{-i phi} * apq is real positive.
      const cplx phase = apq / mag;
      const double app = std::real(a(p, p));
      const double aqq = std::real(a(q, q));

      // Classic Jacobi angle: tan(2 theta) = 2|apq| / (app - aqq).
      const double tau = (aqq - app) / (2.0 * mag);
      const double t = (tau >= 0 ? 1.0 : -1.0) / (std::abs(tau) + std::sqrt(1.0 + tau * tau));
      const double c = 1.0 / std::sqrt(1.0 + t * t);
      const double s = t * c;
      const cplx sp = s * phase;  // complex "sine" carrying the phase

      // Apply A <- J† A J with J acting on columns/rows p,q:
      //   col_p' =  c*col_p + conj(sp)... — implemented element-wise below.
      for (std::size_t k = 0; k < n; ++k) {
        const cplx akp = a(k, p);
        const cplx akq = a(k, q);
        a(k, p) = c * akp - std::conj(sp) * akq;
        a(k, q) = sp * akp + c * akq;
      }
      for (std::size_t k = 0; k < n; ++k) {
        const cplx apk = a(p, k);
        const cplx aqk = a(q, k);
        a(p, k) = c * apk - sp * aqk;
        a(q, k) = std::conj(sp) * apk + c * aqk;
      }
      // Clean up round-off on the zeroed pair and enforce real diagonal.
      a(p, q) = cplx(0, 0);
      a(q, p) = cplx(0, 0);
      a(p, p) = cplx(std::real(a(p, p)), 0);
      a(q, q) = cplx(std::real(a(q, q)), 0);

      if (v != nullptr) {
        for (std::size_t k = 0; k < n; ++k) {
          const cplx vkp = (*v)(k, p);
          const cplx vkq = (*v)(k, q);
          (*v)(k, p) = c * vkp - std::conj(sp) * vkq;
          (*v)(k, q) = sp * vkp + c * vkq;
        }
      }
    }
  }
}

EigResult run(const CMat& input, int max_sweeps, double tol, bool want_vectors) {
  input.require_square("hermitian_eig");
  if (!is_hermitian(input, tol))
    throw std::invalid_argument("hermitian_eig: input is not Hermitian");

  const std::size_t n = input.rows();
  CMat a = hermitian_part(input);  // symmetrize away round-off
  CMat v = want_vectors ? CMat::identity(n) : CMat();

  const double scale = std::max(a.frobenius_norm(), 1e-300);
  const double stop = (1e-14 * scale) * (1e-14 * scale) * static_cast<double>(n * n);

  bool converged = false;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diag_norm2(a) <= stop) {
      converged = true;
      break;
    }
    jacobi_sweep(a, want_vectors ? &v : nullptr);
  }
  if (!converged && off_diag_norm2(a) > stop)
    throw NumericalError("hermitian_eig: Jacobi did not converge");

  EigResult res;
  res.values.resize(n);
  for (std::size_t i = 0; i < n; ++i) res.values[i] = std::real(a(i, i));

  // Sort descending, permuting eigenvector columns alongside.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return res.values[x] > res.values[y]; });

  RVec sorted(n);
  for (std::size_t i = 0; i < n; ++i) sorted[i] = res.values[order[i]];
  res.values = std::move(sorted);

  if (want_vectors) {
    res.vectors = CMat(n, n);
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < n; ++i) res.vectors(i, j) = v(i, order[j]);
  }
  return res;
}

}  // namespace

EigResult hermitian_eig(const CMat& a, int max_sweeps, double hermiticity_tol) {
  return run(a, max_sweeps, hermiticity_tol, /*want_vectors=*/true);
}

RVec hermitian_eigenvalues(const CMat& a, int max_sweeps) {
  return run(a, max_sweeps, 1e-9, /*want_vectors=*/false).values;
}

}  // namespace qfc::linalg
