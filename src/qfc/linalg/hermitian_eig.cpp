#include "qfc/linalg/hermitian_eig.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "qfc/linalg/backend.hpp"
#include "qfc/linalg/error.hpp"
#include "qfc/obs/obs.hpp"

namespace qfc::linalg {
namespace {

using detail::off_diag_norm2;

/// One cyclic Jacobi sweep on Hermitian `a`, accumulating rotations into `v`
/// when v != nullptr. Each rotation zeroes a(p,q) exactly. Returns the
/// number of rotations applied (skipped negligible pivots excluded).
std::uint64_t jacobi_sweep(CMat& a, CMat* v) {
  std::uint64_t rotations = 0;
  const std::size_t n = a.rows();
  for (std::size_t p = 0; p + 1 < n; ++p) {
    for (std::size_t q = p + 1; q < n; ++q) {
      const cplx apq = a(p, q);
      const double mag = std::abs(apq);
      if (mag < 1e-300) continue;
      ++rotations;

      const auto [c, sp] =
          detail::jacobi_params(std::real(a(p, p)), std::real(a(q, q)), apq, mag);

      // Apply A <- J† A J with J acting on columns/rows p,q:
      //   col_p' =  c*col_p + conj(sp)... — implemented element-wise below.
      for (std::size_t k = 0; k < n; ++k) {
        const cplx akp = a(k, p);
        const cplx akq = a(k, q);
        a(k, p) = c * akp - std::conj(sp) * akq;
        a(k, q) = sp * akp + c * akq;
      }
      for (std::size_t k = 0; k < n; ++k) {
        const cplx apk = a(p, k);
        const cplx aqk = a(q, k);
        a(p, k) = c * apk - sp * aqk;
        a(q, k) = std::conj(sp) * apk + c * aqk;
      }
      // Clean up round-off on the zeroed pair and enforce real diagonal.
      a(p, q) = cplx(0, 0);
      a(q, p) = cplx(0, 0);
      a(p, p) = cplx(std::real(a(p, p)), 0);
      a(q, q) = cplx(std::real(a(q, q)), 0);

      if (v != nullptr) {
        for (std::size_t k = 0; k < n; ++k) {
          const cplx vkp = (*v)(k, p);
          const cplx vkq = (*v)(k, q);
          (*v)(k, p) = c * vkp - std::conj(sp) * vkq;
          (*v)(k, q) = sp * vkp + c * vkq;
        }
      }
    }
  }
  return rotations;
}

}  // namespace

namespace detail {

EigResult finalize_eig(const CMat& diagonalized, const CMat& vectors, bool want_vectors) {
  const std::size_t n = diagonalized.rows();
  EigResult res;
  res.values.resize(n);
  for (std::size_t i = 0; i < n; ++i) res.values[i] = std::real(diagonalized(i, i));

  // Sort descending, permuting eigenvector columns alongside.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return res.values[x] > res.values[y]; });

  RVec sorted(n);
  for (std::size_t i = 0; i < n; ++i) sorted[i] = res.values[order[i]];
  res.values = std::move(sorted);

  if (want_vectors) {
    res.vectors = CMat(n, n);
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < n; ++i) res.vectors(i, j) = vectors(i, order[j]);
  }
  return res;
}

EigResult reference_hermitian_eig(const CMat& input, const EigOptions& opt) {
  const std::size_t n = input.rows();
  QFC_OBS_SPAN("linalg.eig.reference", {{"n", n}});
  CMat a = hermitian_part(input);  // symmetrize away round-off
  CMat v = opt.want_vectors ? CMat::identity(n) : CMat();

  const double stop =
      detail::jacobi_stop_threshold(std::max(a.frobenius_norm(), 1e-300), n);

  std::uint64_t sweeps_done = 0, rotations_done = 0;
  bool converged = false;
  for (int sweep = 0; sweep < opt.max_sweeps; ++sweep) {
    if (off_diag_norm2(a) <= stop) {
      converged = true;
      break;
    }
    ++sweeps_done;
    rotations_done += jacobi_sweep(a, opt.want_vectors ? &v : nullptr);
  }
  if (!converged && off_diag_norm2(a) > stop)
    throw NumericalError("hermitian_eig: Jacobi did not converge");

  if (obs::metrics_enabled()) {
    obs::counter("linalg.reference.eig.calls").increment();
    obs::counter("linalg.reference.eig.sweeps").add(sweeps_done);
    obs::counter("linalg.reference.eig.rotations").add(rotations_done);
  }
  return finalize_eig(a, v, opt.want_vectors);
}

}  // namespace detail

// Public entry points: validate once, then dispatch to the active backend.

EigResult hermitian_eig(const CMat& a, int max_sweeps, double hermiticity_tol) {
  a.require_square("hermitian_eig");
  if (!is_hermitian(a, hermiticity_tol))
    throw std::invalid_argument("hermitian_eig: input is not Hermitian");
  QFC_OBS_SPAN("linalg.eig", {{"n", a.rows()}, {"backend", backend().name()}});
  EigOptions opt;
  opt.max_sweeps = max_sweeps;
  opt.want_vectors = true;
  return backend().hermitian_eig(a, opt);
}

RVec hermitian_eigenvalues(const CMat& a, int max_sweeps) {
  a.require_square("hermitian_eig");
  if (!is_hermitian(a, 1e-9))
    throw std::invalid_argument("hermitian_eig: input is not Hermitian");
  QFC_OBS_SPAN("linalg.eig", {{"n", a.rows()}, {"backend", backend().name()}});
  EigOptions opt;
  opt.max_sweeps = max_sweeps;
  opt.want_vectors = false;
  return backend().hermitian_eig(a, opt).values;
}

}  // namespace qfc::linalg
