#include "qfc/linalg/matrix_functions.hpp"

#include <algorithm>
#include <cmath>

#include "qfc/linalg/backend.hpp"
#include "qfc/linalg/error.hpp"
#include "qfc/linalg/hermitian_eig.hpp"

namespace qfc::linalg {

namespace {

CMat rebuild(const EigResult& e, const RVec& mapped) {
  return backend().scaled_congruence(e.vectors, mapped);
}

}  // namespace

CMat hermitian_function(const CMat& a, double (*f)(double)) {
  const EigResult e = hermitian_eig(a);
  RVec mapped(e.values.size());
  for (std::size_t i = 0; i < mapped.size(); ++i) mapped[i] = f(e.values[i]);
  return rebuild(e, mapped);
}

CMat sqrtm_psd(const CMat& a, double clip_tol) {
  const EigResult e = hermitian_eig(a);
  RVec mapped(e.values.size());
  for (std::size_t i = 0; i < mapped.size(); ++i) {
    double v = e.values[i];
    if (v < 0) {
      if (v < -clip_tol)
        throw NumericalError("sqrtm_psd: matrix has a significantly negative eigenvalue");
      v = 0;
    }
    mapped[i] = std::sqrt(v);
  }
  return rebuild(e, mapped);
}

CMat expm_hermitian(const CMat& a) { return hermitian_function(a, [](double x) { return std::exp(x); }); }

CMat project_to_density_matrix(const CMat& a) {
  a.require_square("project_to_density_matrix");
  const CMat h = hermitian_part(a);
  const EigResult e = hermitian_eig(h);
  const std::size_t n = e.values.size();

  // Normalize trace to 1 first, then project eigenvalues onto the simplex
  // (Smolin et al., "Efficient method for computing the maximum-likelihood
  // quantum state from measurements with additive Gaussian noise").
  double tr = 0;
  for (double v : e.values) tr += v;
  RVec lam = e.values;
  if (std::abs(tr) > 1e-12)
    for (auto& v : lam) v /= tr;

  // Simplex projection on an index view sorted descending (lam itself must
  // keep its position to stay paired with its eigenvector).
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t a_, std::size_t b_) { return lam[a_] > lam[b_]; });

  RVec out(n, 0.0);
  double acc = 0;
  std::size_t k = n;
  for (std::size_t i = 0; i < n; ++i) {
    acc += lam[idx[i]];
    const double water = (acc - 1.0) / static_cast<double>(i + 1);
    if (lam[idx[i]] - water <= 0) {
      k = i;
      acc -= lam[idx[i]];
      break;
    }
  }
  const double water = (acc - 1.0) / static_cast<double>(k == 0 ? 1 : k);
  for (std::size_t i = 0; i < k; ++i) out[idx[i]] = std::max(0.0, lam[idx[i]] - water);

  return rebuild(e, out);
}

}  // namespace qfc::linalg
