#include "qfc/linalg/backend.hpp"

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <string>

#include "qfc/obs/obs.hpp"

namespace qfc::linalg {
namespace detail {

// Nominal flop count of an m x k by k x n product: 2mkn real flops, with a
// 4x factor for complex (each complex multiply-add is 4 real multiplies +
// 4 real adds ~ 8 flops vs 2). Counted where a concrete kernel runs, so
// blocked-backend fallbacks to the reference kernel bill as reference.
std::uint64_t gemm_flops(std::size_t m, std::size_t k, std::size_t n, bool is_complex) {
  const std::uint64_t base = 2ull * m * k * n;
  return is_complex ? 4ull * base : base;
}

// One multiply per output element: 6 real flops for a complex multiply
// (4 mul + 2 add), 1 for real.
std::uint64_t kron_flops(std::size_t out_elems, bool is_complex) {
  return (is_complex ? 6ull : 1ull) * out_elems;
}

JacobiParams jacobi_params(double app, double aqq, cplx apq, double mag) {
  // Phase so that e^{-i phi} * apq is real positive, then the classic
  // Jacobi angle: tan(2 theta) = 2|apq| / (app - aqq).
  const cplx phase = apq / mag;
  const double tau = (aqq - app) / (2.0 * mag);
  const double t = (tau >= 0 ? 1.0 : -1.0) / (std::abs(tau) + std::sqrt(1.0 + tau * tau));
  JacobiParams jp;
  jp.c = 1.0 / std::sqrt(1.0 + t * t);
  jp.sp = (t * jp.c) * phase;
  return jp;
}

double off_diag_norm2(const CMat& a) {
  double s = 0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      if (i != j) s += std::norm(a(i, j));
  return s;
}

double jacobi_stop_threshold(double scale, std::size_t n) {
  return (1e-14 * scale) * (1e-14 * scale) * static_cast<double>(n * n);
}

std::optional<BackendKind> parse_backend(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "reference" || lower == "ref") return BackendKind::Reference;
  if (lower == "blocked") return BackendKind::Blocked;
  return std::nullopt;
}

template <class T>
void reference_gemm_impl(const Mat<T>& a, const Mat<T>& b, Mat<T>& c) {
  // ikj order with a zero-skip on a(i,k): many quantum-layer operands
  // (Paulis, Weyl shifts, projectors) are structurally sparse.
  const std::size_t m = a.rows(), kk = a.cols(), n = b.cols();
  const T* pa = a.data();
  const T* pb = b.data();
  T* pc = c.data();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t k = 0; k < kk; ++k) {
      const T aik = pa[i * kk + k];
      if (aik == T{}) continue;
      const T* brow = pb + k * n;
      T* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

namespace {

void count_reference_gemm(std::size_t m, std::size_t k, std::size_t n, bool is_complex) {
  if (!obs::metrics_enabled()) return;
  obs::counter("linalg.reference.gemm.calls").increment();
  obs::counter("linalg.reference.gemm.flops").add(gemm_flops(m, k, n, is_complex));
}

}  // namespace

void reference_gemm(const RMat& a, const RMat& b, RMat& c) {
  count_reference_gemm(a.rows(), a.cols(), b.cols(), false);
  reference_gemm_impl(a, b, c);
}
void reference_gemm(const CMat& a, const CMat& b, CMat& c) {
  count_reference_gemm(a.rows(), a.cols(), b.cols(), true);
  reference_gemm_impl(a, b, c);
}

template <class T>
void reference_kron_impl(const Mat<T>& a, const Mat<T>& b, Mat<T>& out) {
  // Same arithmetic as the inline template in matrix.hpp: one multiply per
  // element, structural zeros of `a` skipped (their output block stays 0).
  const std::size_t rb = b.rows(), cb = b.cols(), cols = out.cols();
  const T* pb = b.data();
  T* po = out.data();
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) {
      const T aij = a(i, j);
      if (aij == T{}) continue;
      for (std::size_t k = 0; k < rb; ++k) {
        const T* brow = pb + k * cb;
        T* orow = po + (i * rb + k) * cols + j * cb;
        for (std::size_t l = 0; l < cb; ++l) orow[l] = aij * brow[l];
      }
    }
}

namespace {

void count_kron(const char* backend_name, std::size_t out_elems, bool is_complex) {
  if (!obs::metrics_enabled()) return;
  obs::counter(std::string("linalg.") + backend_name + ".kron.calls").increment();
  obs::counter(std::string("linalg.") + backend_name + ".kron.flops")
      .add(kron_flops(out_elems, is_complex));
}

}  // namespace

void reference_kron(const RMat& a, const RMat& b, RMat& out) {
  count_kron("reference", out.size(), false);
  reference_kron_impl(a, b, out);
}
void reference_kron(const CMat& a, const CMat& b, CMat& out) {
  count_kron("reference", out.size(), true);
  reference_kron_impl(a, b, out);
}

CMat reference_scaled_congruence(const CMat& v, const RVec& d) {
  const std::size_t n = d.size();
  CMat out(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      cplx s(0, 0);
      for (std::size_t k = 0; k < n; ++k)
        s += v(i, k) * d[k] * std::conj(v(j, k));
      out(i, j) = s;
    }
  return out;
}

// gemm_dispatch / kron_dispatch (declared in matrix.hpp) are the seams
// Mat<T>::operator* and kron() call through; only the two scalar types
// used in the library exist.
template <>
void gemm_dispatch<double>(const RMat& a, const RMat& b, RMat& c) {
  backend().gemm(a, b, c);
}
template <>
void gemm_dispatch<cplx>(const CMat& a, const CMat& b, CMat& c) {
  backend().gemm(a, b, c);
}
template <>
void kron_dispatch<double>(const RMat& a, const RMat& b, RMat& out) {
  backend().kron(a, b, out);
}
template <>
void kron_dispatch<cplx>(const CMat& a, const CMat& b, CMat& out) {
  backend().kron(a, b, out);
}

}  // namespace detail

// ------------------------------------------------- Backend base defaults
// Serial loops over the per-matrix virtuals: always correct, inherited by
// the Reference backend. The Blocked backend overrides them with pool
// fan-outs that are bitwise identical to these loops (fixed index-to-task
// assignment, one result slot per index).

void Backend::kron(const RMat& a, const RMat& b, RMat& out) const {
  detail::reference_kron(a, b, out);
}
void Backend::kron(const CMat& a, const CMat& b, CMat& out) const {
  detail::reference_kron(a, b, out);
}

std::vector<EigResult> Backend::hermitian_eig_batch(const std::vector<CMat>& as,
                                                    const EigOptions& opt) const {
  std::vector<EigResult> out(as.size());
  for (std::size_t i = 0; i < as.size(); ++i) out[i] = hermitian_eig(as[i], opt);
  return out;
}

std::vector<SvdResult> Backend::svd_batch(const std::vector<CMat>& as,
                                          int max_sweeps) const {
  std::vector<SvdResult> out(as.size());
  for (std::size_t i = 0; i < as.size(); ++i) out[i] = svd(as[i], max_sweeps);
  return out;
}

std::vector<CMat> Backend::gemm_batch(const std::vector<CMat>& as,
                                      const std::vector<CMat>& bs) const {
  std::vector<CMat> out(as.size());
  for (std::size_t i = 0; i < as.size(); ++i) {
    out[i] = CMat(as[i].rows(), bs[i].cols());
    gemm(as[i], bs[i], out[i]);
  }
  return out;
}

namespace {

class ReferenceBackend final : public Backend {
 public:
  const char* name() const noexcept override { return "reference"; }
  void gemm(const RMat& a, const RMat& b, RMat& c) const override {
    detail::reference_gemm(a, b, c);
  }
  void gemm(const CMat& a, const CMat& b, CMat& c) const override {
    detail::reference_gemm(a, b, c);
  }
  CMat scaled_congruence(const CMat& v, const RVec& d) const override {
    return detail::reference_scaled_congruence(v, d);
  }
  EigResult hermitian_eig(const CMat& a, const EigOptions& opt) const override {
    return detail::reference_hermitian_eig(a, opt);
  }
  SvdResult svd(const CMat& a, int max_sweeps) const override {
    return detail::reference_svd(a, max_sweeps);
  }
};

class BlockedBackend final : public Backend {
 public:
  const char* name() const noexcept override { return "blocked"; }
  void gemm(const RMat& a, const RMat& b, RMat& c) const override {
    detail::blocked_gemm(a, b, c);
  }
  void gemm(const CMat& a, const CMat& b, CMat& c) const override {
    detail::blocked_gemm(a, b, c);
  }
  CMat scaled_congruence(const CMat& v, const RVec& d) const override {
    // diag-scale the columns once, then one blocked GEMM against V†.
    const std::size_t n = d.size();
    CMat w(n, n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t k = 0; k < n; ++k) w(i, k) = v(i, k) * d[k];
    CMat out(n, n);
    detail::blocked_gemm(w, v.adjoint(), out);
    return out;
  }
  EigResult hermitian_eig(const CMat& a, const EigOptions& opt) const override {
    return detail::blocked_hermitian_eig(a, opt);
  }
  SvdResult svd(const CMat& a, int max_sweeps) const override {
    return detail::blocked_svd(a, max_sweeps);
  }
  void kron(const RMat& a, const RMat& b, RMat& out) const override {
    detail::blocked_kron(a, b, out);
  }
  void kron(const CMat& a, const CMat& b, CMat& out) const override {
    detail::blocked_kron(a, b, out);
  }
  std::vector<EigResult> hermitian_eig_batch(const std::vector<CMat>& as,
                                             const EigOptions& opt) const override {
    return detail::blocked_hermitian_eig_batch(as, opt);
  }
  std::vector<SvdResult> svd_batch(const std::vector<CMat>& as,
                                   int max_sweeps) const override {
    return detail::blocked_svd_batch(as, max_sweeps);
  }
  std::vector<CMat> gemm_batch(const std::vector<CMat>& as,
                               const std::vector<CMat>& bs) const override {
    return detail::blocked_gemm_batch(as, bs);
  }
};

// Blocked is the process default since its SIMD micro-kernels win at every
// benched shape (see BENCH_linalg.json); QFC_LINALG_BACKEND=reference
// restores the naive baseline for A/B runs.
BackendKind initial_backend() {
  if (const char* env = std::getenv("QFC_LINALG_BACKEND")) {
    if (auto kind = detail::parse_backend(env)) return *kind;
  }
  return BackendKind::Blocked;
}

std::atomic<BackendKind>& default_backend_slot() {
  static std::atomic<BackendKind> kind{initial_backend()};
  return kind;
}

}  // namespace

BackendKind default_backend() { return default_backend_slot().load(std::memory_order_relaxed); }

void set_default_backend(BackendKind kind) {
  default_backend_slot().store(kind, std::memory_order_relaxed);
}

const Backend& backend(BackendKind kind) {
  static const ReferenceBackend reference;
  static const BlockedBackend blocked;
  switch (kind) {
    case BackendKind::Blocked:
      return blocked;
    case BackendKind::Reference:
    default:
      return reference;
  }
}

const Backend& backend() { return backend(default_backend()); }

const char* to_string(BackendKind kind) {
  return kind == BackendKind::Blocked ? "blocked" : "reference";
}

// ------------------------------------------------- batch entry points
// Validate once (same checks as the per-matrix entry points), then hand the
// whole batch to the active backend.

std::vector<EigResult> hermitian_eig_batch(const std::vector<CMat>& as,
                                           const EigOptions& opt,
                                           double hermiticity_tol) {
  for (const CMat& a : as) {
    a.require_square("hermitian_eig_batch");
    if (!is_hermitian(a, hermiticity_tol))
      throw std::invalid_argument("hermitian_eig_batch: input is not Hermitian");
  }
  QFC_OBS_SPAN("linalg.eig_batch",
               {{"count", as.size()}, {"backend", backend().name()}});
  if (obs::metrics_enabled()) {
    obs::counter("linalg.eig_batch.calls").increment();
    obs::counter("linalg.eig_batch.matrices").add(as.size());
  }
  return backend().hermitian_eig_batch(as, opt);
}

std::vector<RVec> hermitian_eigenvalues_batch(const std::vector<CMat>& as,
                                              int max_sweeps) {
  EigOptions opt;
  opt.max_sweeps = max_sweeps;
  opt.want_vectors = false;
  auto full = hermitian_eig_batch(as, opt);
  std::vector<RVec> out(full.size());
  for (std::size_t i = 0; i < full.size(); ++i) out[i] = std::move(full[i].values);
  return out;
}

std::vector<SvdResult> svd_batch(const std::vector<CMat>& as, int max_sweeps) {
  for (const CMat& a : as)
    if (a.empty()) throw std::invalid_argument("svd_batch: empty matrix");
  QFC_OBS_SPAN("linalg.svd_batch",
               {{"count", as.size()}, {"backend", backend().name()}});
  if (obs::metrics_enabled()) {
    obs::counter("linalg.svd_batch.calls").increment();
    obs::counter("linalg.svd_batch.matrices").add(as.size());
  }
  return backend().svd_batch(as, max_sweeps);
}

std::vector<CMat> gemm_batch(const std::vector<CMat>& as, const std::vector<CMat>& bs) {
  if (as.size() != bs.size())
    throw std::invalid_argument("gemm_batch: operand count mismatch");
  for (std::size_t i = 0; i < as.size(); ++i)
    if (as[i].cols() != bs[i].rows())
      throw std::invalid_argument("gemm_batch: shape mismatch");
  QFC_OBS_SPAN("linalg.gemm_batch",
               {{"count", as.size()}, {"backend", backend().name()}});
  if (obs::metrics_enabled()) {
    obs::counter("linalg.gemm_batch.calls").increment();
    obs::counter("linalg.gemm_batch.matrices").add(as.size());
  }
  return backend().gemm_batch(as, bs);
}

}  // namespace qfc::linalg
