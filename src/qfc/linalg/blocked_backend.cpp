// Blocked backend kernels: cache-blocked GEMM with a transposed-B
// micro-kernel, and round-robin ("chess tournament") parallel Jacobi
// eigendecomposition / one-sided Jacobi SVD on the shared
// qfc::parallel::WorkerPool (see src/qfc/parallel/README.md).
//
// Determinism: every rotation round partitions the matrix into disjoint
// row/column pairs, each updated by exactly one task reading only data no
// other task of the round writes, and each GEMM output element is summed in
// a fixed block order inside a single task. Thread-count and scheduling
// therefore cannot change any floating-point operation order — results are
// bitwise identical from 1 thread to N.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <numeric>
#include <thread>
#include <utility>
#include <vector>

#include "qfc/linalg/backend.hpp"
#include "qfc/linalg/error.hpp"
#include "qfc/obs/obs.hpp"
#include "qfc/parallel/worker_pool.hpp"

namespace qfc::linalg {

namespace {

void count_blocked_gemm(std::size_t m, std::size_t k, std::size_t n, bool is_complex) {
  if (!obs::metrics_enabled()) return;
  obs::counter("linalg.blocked.gemm.calls").increment();
  obs::counter("linalg.blocked.gemm.flops").add(detail::gemm_flops(m, k, n, is_complex));
}

// ------------------------------------------------------------- worker pool

using parallel::WorkerPool;

std::mutex pool_mutex;
std::shared_ptr<WorkerPool> pool_instance;

unsigned initial_thread_request() {
  if (const char* env = std::getenv("QFC_LINALG_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  return 0;  // auto
}

unsigned& thread_request() {
  static unsigned n = initial_thread_request();
  return n;
}

unsigned resolve_threads(unsigned requested) {
  return requested > 0 ? requested : std::max(1u, std::thread::hardware_concurrency());
}

/// Callers hold the returned shared_ptr for the duration of the kernel, so
/// a concurrent set_backend_threads() swap cannot destroy a pool mid-run;
/// concurrent runs on the same pool serialize inside WorkerPool::run.
std::shared_ptr<WorkerPool> pool() {
  std::lock_guard<std::mutex> lock(pool_mutex);
  if (!pool_instance)
    pool_instance = std::make_shared<WorkerPool>(resolve_threads(thread_request()));
  return pool_instance;
}

// ------------------------------------------------------------ blocked GEMM
//
// Two micro-kernels, picked per scalar type (measured under the build's
// plain -O3 on both shapes):
//  - double: pack B transposed once, then each C entry is a unit-stride dot
//    product with four independent accumulator chains (vectorizes cleanly
//    and hides FP add latency).
//  - complex<double>: an axpy panel kernel (crow += aik * brow) with k/j
//    cache blocking — complex dots de-vectorize under generic -O3, so the
//    contiguous axpy form is the faster single-thread baseline.
// Both parallelize over disjoint C row chunks, which is where the multi-core
// speedup comes from; each C entry is accumulated in a fixed k order inside
// one task, so results are bitwise thread-count invariant.

// Below this flop count the dispatch/packing overhead dominates and the
// reference ikj loop (with its structural-sparsity skip) wins; the quantum
// layer's many tiny gate products stay on that path.
constexpr std::size_t kGemmFlopCutoff = std::size_t{48} * 48 * 48;

constexpr std::size_t kGemmRowChunk = 16;     // C rows per pool task
constexpr std::size_t kGemmColBlock = 512;    // C cols per cache block
constexpr std::size_t kGemmDepthBlock = 64;   // k extent per cache block

void gemm_kernel_rows(const RMat& a, const std::vector<double>& bt, RMat& c,
                      std::size_t i0, std::size_t i1) {
  const std::size_t kk = a.cols(), n = c.cols();
  const double* pa = a.data();
  double* pc = c.data();
  for (std::size_t i = i0; i < i1; ++i) {
    const double* arow = pa + i * kk;
    double* crow = pc + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const double* btrow = bt.data() + j * kk;
      double s0 = 0, s1 = 0, s2 = 0, s3 = 0;
      std::size_t k = 0;
      for (; k + 4 <= kk; k += 4) {
        s0 += arow[k] * btrow[k];
        s1 += arow[k + 1] * btrow[k + 1];
        s2 += arow[k + 2] * btrow[k + 2];
        s3 += arow[k + 3] * btrow[k + 3];
      }
      for (; k < kk; ++k) s0 += arow[k] * btrow[k];
      crow[j] = (s0 + s1) + (s2 + s3);
    }
  }
}

void gemm_kernel_rows(const CMat& a, const CMat& b, CMat& c,
                      std::size_t i0, std::size_t i1) {
  const std::size_t kk = a.cols(), n = c.cols();
  const cplx* pa = a.data();
  const cplx* pb = b.data();
  cplx* pc = c.data();
  for (std::size_t kb = 0; kb < kk; kb += kGemmDepthBlock) {
    const std::size_t k1 = std::min(kb + kGemmDepthBlock, kk);
    for (std::size_t jb = 0; jb < n; jb += kGemmColBlock) {
      const std::size_t j1 = std::min(jb + kGemmColBlock, n);
      for (std::size_t i = i0; i < i1; ++i) {
        const cplx* arow = pa + i * kk;
        cplx* crow = pc + i * n;
        for (std::size_t k = kb; k < k1; ++k) {
          const cplx aik = arow[k];
          if (aik == cplx{}) continue;
          const cplx* brow = pb + k * n;
          for (std::size_t j = jb; j < j1; ++j) crow[j] += aik * brow[j];
        }
      }
    }
  }
}

void blocked_gemm_threaded(const RMat& a, const RMat& b, RMat& c) {
  const std::size_t m = a.rows(), kk = a.cols(), n = b.cols();
  count_blocked_gemm(m, kk, n, false);
  QFC_OBS_SPAN("linalg.gemm", {{"m", m}, {"n", n}});
  // Pack B transposed once so the dot micro-kernel walks unit-stride.
  std::vector<double> bt(n * kk);
  for (std::size_t k = 0; k < kk; ++k) {
    const double* brow = b.data() + k * n;
    for (std::size_t j = 0; j < n; ++j) bt[j * kk + k] = brow[j];
  }
  const auto wp = pool();
  parallel::parallel_for_chunks(*wp, m, kGemmRowChunk,
                                [&](std::size_t, std::size_t i0, std::size_t i1) {
                                  gemm_kernel_rows(a, bt, c, i0, i1);
                                });
}

void blocked_gemm_threaded(const CMat& a, const CMat& b, CMat& c) {
  count_blocked_gemm(a.rows(), a.cols(), b.cols(), true);
  QFC_OBS_SPAN("linalg.gemm", {{"m", a.rows()}, {"n", b.cols()}});
  const auto wp = pool();
  parallel::parallel_for_chunks(*wp, a.rows(), kGemmRowChunk,
                                [&](std::size_t, std::size_t i0, std::size_t i1) {
                                  gemm_kernel_rows(a, b, c, i0, i1);
                                });
}

template <class T>
void blocked_gemm_impl(const Mat<T>& a, const Mat<T>& b, Mat<T>& c) {
  if (a.rows() * a.cols() * b.cols() <= kGemmFlopCutoff) {
    detail::reference_gemm(a, b, c);
    return;
  }
  blocked_gemm_threaded(a, b, c);
}

// ------------------------------------------- round-robin rotation schedule

/// Chess-tournament schedule over m players (m even): m-1 rounds, each
/// pairing all players into m/2 disjoint pairs, every unordered pair exactly
/// once per sweep. Player m-1 stays fixed; the others rotate one seat per
/// round (classic circle method).
class RoundRobin {
 public:
  explicit RoundRobin(std::size_t m) : m_(m), ring_(m > 0 ? m - 1 : 0) {
    std::iota(ring_.begin(), ring_.end(), std::size_t{0});
  }

  std::size_t rounds() const noexcept { return m_ > 1 ? m_ - 1 : 0; }
  std::size_t pairs_per_round() const noexcept { return m_ / 2; }

  /// Pair i of the current round, normalized so p < q. Const — safe to call
  /// concurrently from pool tasks.
  std::pair<std::size_t, std::size_t> pair(std::size_t i) const {
    std::size_t x, y;
    if (i == 0) {
      x = m_ - 1;
      y = ring_[0];
    } else {
      x = ring_[i];
      y = ring_[m_ - 1 - i];
    }
    return x < y ? std::pair<std::size_t, std::size_t>{x, y}
                 : std::pair<std::size_t, std::size_t>{y, x};
  }

  void advance() { std::rotate(ring_.begin(), ring_.begin() + 1, ring_.end()); }

 private:
  std::size_t m_;
  std::vector<std::size_t> ring_;
};

using detail::jacobi_params;
using detail::JacobiParams;
using detail::off_diag_norm2;

// Below these dimensions a whole parallel sweep costs more in barriers than
// the reference cyclic sweep costs in flops.
constexpr std::size_t kEigBlockedMinDim = 40;
constexpr std::size_t kSvdBlockedMinDim = 40;

}  // namespace

// -------------------------------------------------------------- public API

void set_backend_threads(unsigned n) {
  std::lock_guard<std::mutex> lock(pool_mutex);
  thread_request() = n;
  pool_instance.reset();  // rebuilt lazily at the next kernel call
}

unsigned backend_threads() {
  std::lock_guard<std::mutex> lock(pool_mutex);
  return resolve_threads(thread_request());
}

unsigned backend_thread_request() {
  std::lock_guard<std::mutex> lock(pool_mutex);
  return thread_request();
}

namespace detail {

void blocked_gemm(const RMat& a, const RMat& b, RMat& c) { blocked_gemm_impl(a, b, c); }
void blocked_gemm(const CMat& a, const CMat& b, CMat& c) { blocked_gemm_impl(a, b, c); }

EigResult blocked_hermitian_eig(const CMat& input, const EigOptions& opt) {
  const std::size_t n = input.rows();
  if (n < kEigBlockedMinDim) return reference_hermitian_eig(input, opt);

  QFC_OBS_SPAN("linalg.eig.blocked", {{"n", n}});
  const bool count_metrics = obs::metrics_enabled();
  std::uint64_t sweeps_done = 0, rotations_done = 0;

  CMat a = hermitian_part(input);  // symmetrize away round-off
  CMat v = opt.want_vectors ? CMat::identity(n) : CMat();
  cplx* pa = a.data();
  cplx* pv = opt.want_vectors ? v.data() : nullptr;

  const double stop =
      detail::jacobi_stop_threshold(std::max(a.frobenius_norm(), 1e-300), n);

  const std::size_t m = n + (n & 1);  // odd n: pad with a bye "player"
  struct Rot {
    std::size_t p = 0, q = 0;
    JacobiParams jp;
    bool active = false;
  };
  std::vector<Rot> rots(m / 2);
  const auto wp = pool();

  bool converged = false;
  for (int sweep = 0; sweep < opt.max_sweeps; ++sweep) {
    if (off_diag_norm2(a) <= stop) {
      converged = true;
      break;
    }
    ++sweeps_done;
    RoundRobin rr(m);
    for (std::size_t round = 0; round < rr.rounds(); ++round, rr.advance()) {
      // Parameters from the round-start snapshot. Each pair reads only its
      // own (p,p), (q,q), (p,q) entries, which no other pair of the round
      // touches, so the snapshot is consistent by construction.
      for (std::size_t i = 0; i < rots.size(); ++i) {
        const auto [p, q] = rr.pair(i);
        Rot& r = rots[i];
        r.p = p;
        r.q = q;
        r.active = false;
        if (q >= n) continue;  // bye pair
        const cplx apq = a(p, q);
        const double mag = std::abs(apq);
        if (mag < 1e-300) continue;
        r.jp = jacobi_params(std::real(a(p, p)), std::real(a(q, q)), apq, mag);
        r.active = true;
        ++rotations_done;
      }

      // Phase 1 — left action J†A: rewrite rows p,q (contiguous memory,
      // disjoint across the round's pairs).
      wp->run(rots.size(), [&](std::size_t i) {
        const Rot& r = rots[i];
        if (!r.active) return;
        const double c = r.jp.c;
        const cplx sp = r.jp.sp, spc = std::conj(r.jp.sp);
        cplx* rp = pa + r.p * n;
        cplx* rq = pa + r.q * n;
        for (std::size_t k = 0; k < n; ++k) {
          const cplx x = rp[k], y = rq[k];
          rp[k] = c * x - sp * y;
          rq[k] = spc * x + c * y;
        }
      });

      // Phase 2 — right action (J†A)J on columns p,q plus the accumulated
      // eigenvector columns; cleans the zeroed pivot and the diagonal.
      wp->run(rots.size(), [&](std::size_t i) {
        const Rot& r = rots[i];
        if (!r.active) return;
        const double c = r.jp.c;
        const cplx sp = r.jp.sp, spc = std::conj(r.jp.sp);
        cplx* cp = pa + r.p;
        cplx* cq = pa + r.q;
        for (std::size_t k = 0; k < n; ++k, cp += n, cq += n) {
          const cplx x = *cp, y = *cq;
          *cp = c * x - spc * y;
          *cq = sp * x + c * y;
        }
        a(r.p, r.q) = cplx(0, 0);
        a(r.q, r.p) = cplx(0, 0);
        a(r.p, r.p) = cplx(std::real(a(r.p, r.p)), 0);
        a(r.q, r.q) = cplx(std::real(a(r.q, r.q)), 0);
        if (pv != nullptr) {
          cplx* vp = pv + r.p;
          cplx* vq = pv + r.q;
          for (std::size_t k = 0; k < n; ++k, vp += n, vq += n) {
            const cplx x = *vp, y = *vq;
            *vp = c * x - spc * y;
            *vq = sp * x + c * y;
          }
        }
      });
    }
  }
  if (!converged && off_diag_norm2(a) > stop)
    throw NumericalError("hermitian_eig(blocked): parallel Jacobi did not converge");

  if (count_metrics) {
    obs::counter("linalg.blocked.eig.calls").increment();
    obs::counter("linalg.blocked.eig.sweeps").add(sweeps_done);
    obs::counter("linalg.blocked.eig.rotations").add(rotations_done);
  }
  return finalize_eig(a, v, opt.want_vectors);
}

SvdResult blocked_svd(const CMat& a, int max_sweeps) {
  const std::size_t m0 = a.rows(), n0 = a.cols();
  // Work on the orientation with fewer columns, like the reference kernel.
  if (n0 > m0) {
    SvdResult t = blocked_svd(a.adjoint(), max_sweeps);
    return SvdResult{std::move(t.v), std::move(t.sigma), std::move(t.u)};
  }
  if (n0 < kSvdBlockedMinDim) return reference_svd(a, max_sweeps);

  QFC_OBS_SPAN("linalg.svd.blocked", {{"m", m0}, {"n", n0}});
  const bool count_metrics = obs::metrics_enabled();
  std::atomic<std::uint64_t> rotations_done{0};
  std::uint64_t sweeps_done = 0;

  const std::size_t m = m0, n = n0;
  // Transposed working copies: row j of `wt` is column j of A and row j of
  // `vt` is column j of V, so every Gram dot product and rotation of the
  // one-sided Jacobi walks unit-stride memory.
  CMat wt = a.transpose();
  CMat vt = CMat::identity(n);
  cplx* pw = wt.data();
  cplx* pv = vt.data();

  const std::size_t mp = n + (n & 1);
  const auto wp = pool();
  std::atomic<bool> any_rotation{false};

  bool converged = false;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    ++sweeps_done;
    any_rotation.store(false, std::memory_order_relaxed);
    RoundRobin rr(mp);
    for (std::size_t round = 0; round < rr.rounds(); ++round, rr.advance()) {
      // One-sided rotations only touch their own two columns (= rows of the
      // transposed copies), so a round needs no phase split at all.
      wp->run(rr.pairs_per_round(), [&](std::size_t i) {
        const auto [p, q] = rr.pair(i);
        if (q >= n) return;  // bye pair
        cplx* rp = pw + p * m;
        cplx* rq = pw + q * m;
        double app = 0, aqq = 0;
        cplx apq(0, 0);
        for (std::size_t k = 0; k < m; ++k) {
          app += std::norm(rp[k]);
          aqq += std::norm(rq[k]);
          apq += std::conj(rp[k]) * rq[k];
        }
        const double mag = std::abs(apq);
        const double threshold = 1e-15 * std::sqrt(app * aqq);
        if (mag <= threshold || mag < 1e-300) return;
        any_rotation.store(true, std::memory_order_relaxed);
        if (count_metrics) rotations_done.fetch_add(1, std::memory_order_relaxed);

        const JacobiParams jp = jacobi_params(app, aqq, apq, mag);
        const double c = jp.c;
        const cplx sp = jp.sp, spc = std::conj(jp.sp);
        for (std::size_t k = 0; k < m; ++k) {
          const cplx x = rp[k], y = rq[k];
          rp[k] = c * x - spc * y;
          rq[k] = sp * x + c * y;
        }
        cplx* vp = pv + p * n;
        cplx* vq = pv + q * n;
        for (std::size_t k = 0; k < n; ++k) {
          const cplx x = vp[k], y = vq[k];
          vp[k] = c * x - spc * y;
          vq[k] = sp * x + c * y;
        }
      });
    }
    if (!any_rotation.load(std::memory_order_relaxed)) {
      converged = true;
      break;
    }
  }
  if (!converged) throw NumericalError("svd(blocked): one-sided Jacobi did not converge");

  if (count_metrics) {
    obs::counter("linalg.blocked.svd.calls").increment();
    obs::counter("linalg.blocked.svd.sweeps").add(sweeps_done);
    obs::counter("linalg.blocked.svd.rotations")
        .add(rotations_done.load(std::memory_order_relaxed));
  }

  // Row norms of wt are the singular values; sort descending and transpose
  // the factors back into column-major-of-result form.
  RVec sigma(n);
  for (std::size_t j = 0; j < n; ++j) {
    double s = 0;
    const cplx* row = pw + j * m;
    for (std::size_t i = 0; i < m; ++i) s += std::norm(row[i]);
    sigma[j] = std::sqrt(s);
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return sigma[x] > sigma[y]; });

  SvdResult res;
  res.sigma.resize(n);
  res.u = CMat(m, n);
  res.v = CMat(n, n);
  const double smax = sigma.empty() ? 0.0 : sigma[order[0]];
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t src = order[j];
    res.sigma[j] = sigma[src];
    if (sigma[src] > 1e-14 * std::max(smax, 1.0)) {
      const cplx* wrow = pw + src * m;
      for (std::size_t i = 0; i < m; ++i) res.u(i, j) = wrow[i] / sigma[src];
    }  // else: null direction, U column stays zero (matches reference)
    const cplx* vrow = pv + src * n;
    for (std::size_t i = 0; i < n; ++i) res.v(i, j) = vrow[i];
  }
  return res;
}

}  // namespace detail
}  // namespace qfc::linalg
