// Blocked backend kernels: SIMD (AVX2, runtime-dispatched) complex
// micro-kernels feeding a planar-packed GEMM, cyclic/round-robin parallel
// Jacobi eigendecomposition, one-sided Jacobi SVD, a cache-blocked kron,
// and batch-of-matrices drivers on the shared qfc::parallel::WorkerPool
// (see src/qfc/parallel/README.md and src/qfc/linalg/README.md).
//
// Determinism: every rotation round partitions the matrix into disjoint
// row/column pairs, each updated by exactly one task reading only data no
// other task of the round writes, and each GEMM/kron output element is
// accumulated in a fixed order inside a single task. Thread count and
// scheduling therefore cannot change any floating-point operation order —
// results are bitwise identical from 1 thread to N. Batch kernels fan out
// one task per matrix (disjoint result slots), so they inherit the same
// guarantee.
//
// SIMD policy: the rotation-pair / column-rotation / kron row-scale kernels
// replicate the scalar std::complex arithmetic operation-for-operation
// (mul + permute + addsub, never FMA), so eig and kron results are bitwise
// identical whether the vector path runs or not. The planar GEMM and the
// SVD Gram-dot reductions use FMA and reordered accumulators and are only
// guaranteed to 1e-10 across modes. The build adds -ffp-contract=off so the
// scalar expressions can never be silently contracted into FMA either
// (which would break the bitwise half of this contract on -march builds).

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "qfc/linalg/backend.hpp"
#include "qfc/linalg/error.hpp"
#include "qfc/obs/obs.hpp"
#include "qfc/parallel/worker_pool.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define QFC_SIMD_X86 1
#include <immintrin.h>
#endif

namespace qfc::linalg {

namespace {

void count_blocked_gemm(std::size_t m, std::size_t k, std::size_t n, bool is_complex) {
  if (!obs::metrics_enabled()) return;
  obs::counter("linalg.blocked.gemm.calls").increment();
  obs::counter("linalg.blocked.gemm.flops").add(detail::gemm_flops(m, k, n, is_complex));
}

void count_blocked_kron(std::size_t out_elems, bool is_complex) {
  if (!obs::metrics_enabled()) return;
  obs::counter("linalg.blocked.kron.calls").increment();
  obs::counter("linalg.blocked.kron.flops").add(detail::kron_flops(out_elems, is_complex));
}

// ------------------------------------------------------------- worker pool

using parallel::WorkerPool;

std::mutex pool_mutex;
std::shared_ptr<WorkerPool> pool_instance;

unsigned initial_thread_request() {
  if (const char* env = std::getenv("QFC_LINALG_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  return 0;  // auto
}

unsigned& thread_request() {
  static unsigned n = initial_thread_request();
  return n;
}

unsigned resolve_threads(unsigned requested) {
  return requested > 0 ? requested : std::max(1u, std::thread::hardware_concurrency());
}

/// Callers hold the returned shared_ptr for the duration of the kernel, so
/// a concurrent set_backend_threads() swap cannot destroy a pool mid-run;
/// concurrent runs on the same pool serialize inside WorkerPool::run.
std::shared_ptr<WorkerPool> pool() {
  std::lock_guard<std::mutex> lock(pool_mutex);
  if (!pool_instance)
    pool_instance = std::make_shared<WorkerPool>(resolve_threads(thread_request()));
  return pool_instance;
}

// ----------------------------------------------------------- serial scope

// Depth of SerialKernelScope nesting on this thread. Non-zero means "do not
// touch the pool": we are inside a pool task (WorkerPool::run from a task
// would deadlock), so kernels run their rounds inline. The arithmetic is
// identical either way, so results are bitwise unaffected.
thread_local int serial_scope_depth = 0;

bool serial_mode() { return serial_scope_depth > 0; }

/// True when a kernel entered from here may dispatch rounds to the pool:
/// not inside a SerialKernelScope and more than one worker resolved. On a
/// 1-core host this skips pool dispatch (and its task-queue overhead)
/// entirely, which is most of the small-n crossover fix.
bool use_pool() {
  if (serial_mode()) return false;
  std::lock_guard<std::mutex> lock(pool_mutex);
  return resolve_threads(thread_request()) > 1;
}

/// Run fn(task_index) for task_index in [0, count): on the pool when `wp`
/// is non-null, inline (same index order) otherwise.
template <class Fn>
void run_tasks(const std::shared_ptr<WorkerPool>& wp, std::size_t count, Fn&& fn) {
  if (wp) {
    wp->run(count, fn);
  } else {
    for (std::size_t i = 0; i < count; ++i) fn(i);
  }
}

/// parallel_for_chunks with the same fixed boundaries whether pooled or
/// inline, so the chunk → data mapping never depends on the thread count.
template <class Fn>
void for_row_chunks(bool pooled, std::size_t n, std::size_t chunk, Fn&& fn) {
  if (pooled) {
    const auto wp = pool();
    parallel::parallel_for_chunks(*wp, n, chunk, fn);
  } else {
    std::size_t c = 0;
    for (std::size_t i0 = 0; i0 < n; i0 += chunk, ++c)
      fn(c, i0, std::min(i0 + chunk, n));
  }
}

// ------------------------------------------------------------ SIMD control

bool initial_simd_request() {
  if (const char* env = std::getenv("QFC_LINALG_SIMD")) {
    std::string s(env);
    for (char& ch : s) ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
    if (s == "off" || s == "0" || s == "false" || s == "scalar") return false;
  }
  return true;  // unset or anything else: vector path allowed
}

std::atomic<bool>& simd_request_slot() {
  static std::atomic<bool> v{initial_simd_request()};
  return v;
}

bool cpu_supports_simd() {
#if QFC_SIMD_X86
  // FMA is required by the planar GEMM / Gram kernels; every AVX2 part
  // ships it, but check anyway so the fallback is airtight.
  static const bool ok = __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return ok;
#else
  return false;
#endif
}

bool simd_active() {
  return simd_request_slot().load(std::memory_order_relaxed) && cpu_supports_simd();
}

// ------------------------------------------------------- SIMD micro-kernels
//
// The complex-rotation kernels below are bitwise clones of the scalar
// expressions they replace: a std::complex<double> product (a*b) lowers to
// (ar*br - ai*bi, ar*bi + ai*br), which is exactly one permute + two muls +
// one addsub per two elements. No FMA is used in these kernels, and the
// translation unit is built with -ffp-contract=off, so the compiler cannot
// re-fuse either side into something with different rounding.

/// In-place rotation of two length-n complex ranges:
///   a[k] <- c*x - sa*y,  b[k] <- sb*x + c*y   with x=a[k], y=b[k].
/// Both Jacobi row updates (sa=sp, sb=conj(sp)) and the one-sided /
/// eigenvector updates (sa=conj(sp), sb=sp) are this shape.
void rotate_pair_scalar(cplx* a, cplx* b, std::size_t n, double c, cplx sa, cplx sb) {
  for (std::size_t k = 0; k < n; ++k) {
    const cplx x = a[k], y = b[k];
    a[k] = c * x - sa * y;
    b[k] = sb * x + c * y;
  }
}

#if QFC_SIMD_X86
__attribute__((target("avx2"))) void rotate_pair_avx2(cplx* a, cplx* b, std::size_t n,
                                                      double c, cplx sa, cplx sb) {
  double* pa = reinterpret_cast<double*>(a);
  double* pb = reinterpret_cast<double*>(b);
  const __m256d cv = _mm256_set1_pd(c);
  const __m256d sar = _mm256_set1_pd(sa.real());
  const __m256d sai = _mm256_set1_pd(sa.imag());
  const __m256d sbr = _mm256_set1_pd(sb.real());
  const __m256d sbi = _mm256_set1_pd(sb.imag());
  const std::size_t nd = 2 * n;
  std::size_t k = 0;
  for (; k + 4 <= nd; k += 4) {
    const __m256d x = _mm256_loadu_pd(pa + k);
    const __m256d y = _mm256_loadu_pd(pb + k);
    const __m256d xsw = _mm256_permute_pd(x, 0x5);  // swap re/im per element
    const __m256d ysw = _mm256_permute_pd(y, 0x5);
    const __m256d say = _mm256_addsub_pd(_mm256_mul_pd(y, sar), _mm256_mul_pd(ysw, sai));
    const __m256d sbx = _mm256_addsub_pd(_mm256_mul_pd(x, sbr), _mm256_mul_pd(xsw, sbi));
    _mm256_storeu_pd(pa + k, _mm256_sub_pd(_mm256_mul_pd(x, cv), say));
    _mm256_storeu_pd(pb + k, _mm256_add_pd(sbx, _mm256_mul_pd(y, cv)));
  }
  for (std::size_t e = k / 2; e < n; ++e) {
    const cplx x = a[e], y = b[e];
    a[e] = c * x - sa * y;
    b[e] = sb * x + c * y;
  }
}
#endif

void rotate_pair(cplx* a, cplx* b, std::size_t n, double c, cplx sa, cplx sb) {
#if QFC_SIMD_X86
  if (simd_active()) {
    rotate_pair_avx2(a, b, n, c, sa, sb);
    return;
  }
#endif
  rotate_pair_scalar(a, b, n, c, sa, sb);
}

/// One column-pair Jacobi rotation as seen by a row sweep:
///   row[p] <- c*x - conj(sp)*y,  row[q] <- sp*x + c*y.
struct ColRot {
  std::size_t p = 0, q = 0;
  double c = 1.0;
  cplx sp{0, 0};
};

void apply_col_rotations_scalar(cplx* base, std::size_t stride, std::size_t r0,
                                std::size_t r1, const ColRot* rots, std::size_t nrots) {
  for (std::size_t i = 0; i < nrots; ++i) {
    const ColRot& r = rots[i];
    const double c = r.c;
    const cplx sp = r.sp, spc = std::conj(r.sp);
    cplx* row = base + r0 * stride;
    for (std::size_t k = r0; k < r1; ++k, row += stride) {
      const cplx x = row[r.p], y = row[r.q];
      row[r.p] = c * x - spc * y;
      row[r.q] = sp * x + c * y;
    }
  }
}

#if QFC_SIMD_X86
// Two rows per iteration: element (k,p) of each row pair packs into one ymm
// register, and the per-128-bit-lane complex multiply is the same bitwise
// mul/permute/addsub shape as rotate_pair_avx2.
__attribute__((target("avx2"))) void apply_col_rotations_avx2(cplx* base, std::size_t stride,
                                                              std::size_t r0, std::size_t r1,
                                                              const ColRot* rots,
                                                              std::size_t nrots) {
  for (std::size_t i = 0; i < nrots; ++i) {
    const ColRot& r = rots[i];
    const __m256d cv = _mm256_set1_pd(r.c);
    const __m256d spr = _mm256_set1_pd(r.sp.real());
    const __m256d spi = _mm256_set1_pd(r.sp.imag());
    const __m256d spi_neg = _mm256_set1_pd(-r.sp.imag());  // conj(sp).imag
    std::size_t k = r0;
    for (; k + 2 <= r1; k += 2) {
      double* row0 = reinterpret_cast<double*>(base + k * stride);
      double* row1 = reinterpret_cast<double*>(base + (k + 1) * stride);
      const __m128d x0 = _mm_loadu_pd(row0 + 2 * r.p);
      const __m128d x1 = _mm_loadu_pd(row1 + 2 * r.p);
      const __m128d y0 = _mm_loadu_pd(row0 + 2 * r.q);
      const __m128d y1 = _mm_loadu_pd(row1 + 2 * r.q);
      const __m256d x = _mm256_insertf128_pd(_mm256_castpd128_pd256(x0), x1, 1);
      const __m256d y = _mm256_insertf128_pd(_mm256_castpd128_pd256(y0), y1, 1);
      const __m256d xsw = _mm256_permute_pd(x, 0x5);
      const __m256d ysw = _mm256_permute_pd(y, 0x5);
      const __m256d cjy =
          _mm256_addsub_pd(_mm256_mul_pd(y, spr), _mm256_mul_pd(ysw, spi_neg));
      const __m256d spx = _mm256_addsub_pd(_mm256_mul_pd(x, spr), _mm256_mul_pd(xsw, spi));
      const __m256d xp = _mm256_sub_pd(_mm256_mul_pd(x, cv), cjy);
      const __m256d yp = _mm256_add_pd(spx, _mm256_mul_pd(y, cv));
      _mm_storeu_pd(row0 + 2 * r.p, _mm256_castpd256_pd128(xp));
      _mm_storeu_pd(row1 + 2 * r.p, _mm256_extractf128_pd(xp, 1));
      _mm_storeu_pd(row0 + 2 * r.q, _mm256_castpd256_pd128(yp));
      _mm_storeu_pd(row1 + 2 * r.q, _mm256_extractf128_pd(yp, 1));
    }
    if (k < r1) apply_col_rotations_scalar(base, stride, k, r1, &r, 1);
  }
}
#endif

void apply_col_rotations(cplx* base, std::size_t stride, std::size_t r0, std::size_t r1,
                         const ColRot* rots, std::size_t nrots) {
#if QFC_SIMD_X86
  if (simd_active()) {
    apply_col_rotations_avx2(base, stride, r0, r1, rots, nrots);
    return;
  }
#endif
  apply_col_rotations_scalar(base, stride, r0, r1, rots, nrots);
}

/// Gram entries of two length-m complex columns (stored as rows here):
/// app = ||x||², aqq = ||y||², apq = <x|y>. The scalar form is the exact
/// reference summation order; the AVX2 form uses 4-lane FMA accumulators
/// (relaxed: 1e-10-level differences across SIMD modes — documented policy).
struct GramDot {
  double app = 0, aqq = 0;
  cplx apq{0, 0};
};

GramDot gram_dot_scalar(const cplx* x, const cplx* y, std::size_t m) {
  GramDot g;
  for (std::size_t k = 0; k < m; ++k) {
    g.app += std::norm(x[k]);
    g.aqq += std::norm(y[k]);
    g.apq += std::conj(x[k]) * y[k];
  }
  return g;
}

#if QFC_SIMD_X86
__attribute__((target("avx2"))) double hsum_avx2(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d s = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
}

__attribute__((target("avx2,fma"))) GramDot gram_dot_avx2(const cplx* xc, const cplx* yc,
                                                          std::size_t m) {
  const double* x = reinterpret_cast<const double*>(xc);
  const double* y = reinterpret_cast<const double*>(yc);
  __m256d app = _mm256_setzero_pd();
  __m256d aqq = _mm256_setzero_pd();
  __m256d cre = _mm256_setzero_pd();
  __m256d cim = _mm256_setzero_pd();  // lanes hold [xi*yr, xr*yi] pairs
  const std::size_t md = 2 * m;
  std::size_t k = 0;
  for (; k + 4 <= md; k += 4) {
    const __m256d xv = _mm256_loadu_pd(x + k);
    const __m256d yv = _mm256_loadu_pd(y + k);
    app = _mm256_fmadd_pd(xv, xv, app);
    aqq = _mm256_fmadd_pd(yv, yv, aqq);
    cre = _mm256_fmadd_pd(xv, yv, cre);
    cim = _mm256_fmadd_pd(_mm256_permute_pd(xv, 0x5), yv, cim);
  }
  // Im <x|y> = sum(xr*yi - xi*yr): negate the xi*yr lanes before reducing.
  const __m256d sign = _mm256_set_pd(1.0, -1.0, 1.0, -1.0);
  GramDot g;
  g.app = hsum_avx2(app);
  g.aqq = hsum_avx2(aqq);
  double re = hsum_avx2(cre);
  double im = hsum_avx2(_mm256_mul_pd(cim, sign));
  for (std::size_t e = k / 2; e < m; ++e) {
    g.app += std::norm(xc[e]);
    g.aqq += std::norm(yc[e]);
    const cplx t = std::conj(xc[e]) * yc[e];
    re += t.real();
    im += t.imag();
  }
  g.apq = cplx(re, im);
  return g;
}
#endif

GramDot gram_dot(const cplx* x, const cplx* y, std::size_t m) {
#if QFC_SIMD_X86
  if (simd_active()) return gram_dot_avx2(x, y, m);
#endif
  return gram_dot_scalar(x, y, m);
}

/// dst[j] = s * src[j] — the kron inner loop. The complex AVX2 form is the
/// same bitwise mul/permute/addsub complex product as the rotation kernels.
void scale_row_scalar(cplx* dst, const cplx* src, std::size_t n, cplx s) {
  for (std::size_t j = 0; j < n; ++j) dst[j] = s * src[j];
}

#if QFC_SIMD_X86
__attribute__((target("avx2"))) void scale_row_avx2(cplx* dstc, const cplx* srcc,
                                                    std::size_t n, cplx s) {
  double* dst = reinterpret_cast<double*>(dstc);
  const double* src = reinterpret_cast<const double*>(srcc);
  const __m256d sr = _mm256_set1_pd(s.real());
  const __m256d si = _mm256_set1_pd(s.imag());
  const std::size_t nd = 2 * n;
  std::size_t k = 0;
  for (; k + 4 <= nd; k += 4) {
    const __m256d b = _mm256_loadu_pd(src + k);
    const __m256d bsw = _mm256_permute_pd(b, 0x5);
    _mm256_storeu_pd(dst + k, _mm256_addsub_pd(_mm256_mul_pd(b, sr), _mm256_mul_pd(bsw, si)));
  }
  for (std::size_t e = k / 2; e < n; ++e) dstc[e] = s * srcc[e];
}
#endif

void scale_row(cplx* dst, const cplx* src, std::size_t n, cplx s) {
#if QFC_SIMD_X86
  if (simd_active()) {
    scale_row_avx2(dst, src, n, s);
    return;
  }
#endif
  scale_row_scalar(dst, src, n, s);
}

void scale_row(double* dst, const double* src, std::size_t n, double s) {
  for (std::size_t j = 0; j < n; ++j) dst[j] = s * src[j];
}

// ------------------------------------------------------------ blocked GEMM
//
// Three paths, picked per scalar type and SIMD mode:
//  - double: pack B transposed once, then each C entry is a unit-stride dot
//    product with four independent accumulator chains (vectorizes cleanly
//    and hides FP add latency).
//  - complex<double>, SIMD active: split B into planar re/im arrays so the
//    inner loop is four real FMA streams over contiguous memory — the form
//    AVX FMA units actually like (a complex "interleaved" inner loop
//    de-vectorizes). Per-row planar accumulators, interleave-store per row.
//  - complex<double>, scalar: an axpy panel kernel (crow += aik * brow) with
//    k/j cache blocking — complex dots de-vectorize under generic -O3, so
//    the contiguous axpy form is the faster scalar baseline.
// All parallelize over disjoint C row chunks; each C entry accumulates in a
// fixed k order inside one task, so results are bitwise thread-invariant.

// Below this flop count the dispatch/packing overhead dominates the scalar
// paths and the reference ikj loop (with its structural-sparsity skip) wins;
// the quantum layer's many tiny gate products stay on that path. The planar
// SIMD path has no such crossover — it wins at every benched size.
constexpr std::size_t kGemmFlopCutoff = std::size_t{48} * 48 * 48;

// With SIMD active, complex products at or below this m*k*n use the
// vectorized axpy kernel (no packing, bitwise equal to reference); above
// it the planar-FMA kernel's packing pays for itself.
constexpr std::size_t kGemmAxpySimdCutoff = std::size_t{16} * 16 * 16;

constexpr std::size_t kGemmRowChunk = 16;     // C rows per pool task
constexpr std::size_t kGemmColBlock = 512;    // C cols per cache block
constexpr std::size_t kGemmDepthBlock = 64;   // k extent per cache block

void gemm_kernel_rows(const RMat& a, const std::vector<double>& bt, RMat& c,
                      std::size_t i0, std::size_t i1) {
  const std::size_t kk = a.cols(), n = c.cols();
  const double* pa = a.data();
  double* pc = c.data();
  for (std::size_t i = i0; i < i1; ++i) {
    const double* arow = pa + i * kk;
    double* crow = pc + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const double* btrow = bt.data() + j * kk;
      double s0 = 0, s1 = 0, s2 = 0, s3 = 0;
      std::size_t k = 0;
      for (; k + 4 <= kk; k += 4) {
        s0 += arow[k] * btrow[k];
        s1 += arow[k + 1] * btrow[k + 1];
        s2 += arow[k + 2] * btrow[k + 2];
        s3 += arow[k + 3] * btrow[k + 3];
      }
      for (; k < kk; ++k) s0 += arow[k] * btrow[k];
      crow[j] = (s0 + s1) + (s2 + s3);
    }
  }
}

void gemm_kernel_rows(const CMat& a, const CMat& b, CMat& c,
                      std::size_t i0, std::size_t i1) {
  const std::size_t kk = a.cols(), n = c.cols();
  const cplx* pa = a.data();
  const cplx* pb = b.data();
  cplx* pc = c.data();
  for (std::size_t kb = 0; kb < kk; kb += kGemmDepthBlock) {
    const std::size_t k1 = std::min(kb + kGemmDepthBlock, kk);
    for (std::size_t jb = 0; jb < n; jb += kGemmColBlock) {
      const std::size_t j1 = std::min(jb + kGemmColBlock, n);
      for (std::size_t i = i0; i < i1; ++i) {
        const cplx* arow = pa + i * kk;
        cplx* crow = pc + i * n;
        for (std::size_t k = kb; k < k1; ++k) {
          const cplx aik = arow[k];
          if (aik == cplx{}) continue;
          const cplx* brow = pb + k * n;
          for (std::size_t j = jb; j < j1; ++j) crow[j] += aik * brow[j];
        }
      }
    }
  }
}

#if QFC_SIMD_X86
// Small-matrix complex GEMM: the reference ikj axpy loop with the inner j
// loop vectorized (same mul/permute/addsub product as the rotation kernels,
// same k accumulation order), so it is bitwise identical to reference_gemm
// while skipping the planar path's packing overhead.
__attribute__((target("avx2"))) void gemm_axpy_rows_avx2(const CMat& a, const CMat& b,
                                                         CMat& c) {
  const std::size_t m = a.rows(), kk = a.cols(), n = b.cols();
  const cplx* pa = a.data();
  const cplx* pb = b.data();
  cplx* pc = c.data();
  const std::size_t nd = 2 * n;
  for (std::size_t i = 0; i < m; ++i) {
    const cplx* arow = pa + i * kk;
    double* crow = reinterpret_cast<double*>(pc + i * n);
    for (std::size_t k = 0; k < kk; ++k) {
      const cplx aik = arow[k];
      if (aik == cplx{}) continue;
      const double* brow = reinterpret_cast<const double*>(pb + k * n);
      const __m256d ar = _mm256_set1_pd(aik.real());
      const __m256d ai = _mm256_set1_pd(aik.imag());
      std::size_t j = 0;
      for (; j + 4 <= nd; j += 4) {
        const __m256d bv = _mm256_loadu_pd(brow + j);
        const __m256d bsw = _mm256_permute_pd(bv, 0x5);
        const __m256d prod =
            _mm256_addsub_pd(_mm256_mul_pd(bv, ar), _mm256_mul_pd(bsw, ai));
        _mm256_storeu_pd(crow + j, _mm256_add_pd(_mm256_loadu_pd(crow + j), prod));
      }
      for (std::size_t e = j / 2; e < n; ++e) pc[i * n + e] += aik * pb[k * n + e];
    }
  }
}

__attribute__((target("avx2,fma"))) void gemm_planar_rows_avx2(
    const cplx* pa, std::size_t kk, std::size_t n, const double* bre, const double* bim,
    cplx* pc, std::size_t i0, std::size_t i1, double* cre, double* cim) {
  for (std::size_t i = i0; i < i1; ++i) {
    const cplx* arow = pa + i * kk;
    for (std::size_t j = 0; j < n; ++j) {
      cre[j] = 0;
      cim[j] = 0;
    }
    for (std::size_t k = 0; k < kk; ++k) {
      const double ar = arow[k].real(), ai = arow[k].imag();
      if (ar == 0.0 && ai == 0.0) continue;  // structural-sparsity skip
      const __m256d arv = _mm256_set1_pd(ar);
      const __m256d aiv = _mm256_set1_pd(ai);
      const double* br = bre + k * n;
      const double* bi = bim + k * n;
      std::size_t j = 0;
      for (; j + 4 <= n; j += 4) {
        __m256d cr = _mm256_loadu_pd(cre + j);
        __m256d ci = _mm256_loadu_pd(cim + j);
        const __m256d brv = _mm256_loadu_pd(br + j);
        const __m256d biv = _mm256_loadu_pd(bi + j);
        cr = _mm256_fmadd_pd(arv, brv, cr);
        cr = _mm256_fnmadd_pd(aiv, biv, cr);
        ci = _mm256_fmadd_pd(arv, biv, ci);
        ci = _mm256_fmadd_pd(aiv, brv, ci);
        _mm256_storeu_pd(cre + j, cr);
        _mm256_storeu_pd(cim + j, ci);
      }
      for (; j < n; ++j) {
        cre[j] += ar * br[j] - ai * bi[j];
        cim[j] += ar * bi[j] + ai * br[j];
      }
    }
    cplx* crow = pc + i * n;
    for (std::size_t j = 0; j < n; ++j) crow[j] = cplx(cre[j], cim[j]);
  }
}

void blocked_gemm_planar(const CMat& a, const CMat& b, CMat& c) {
  const std::size_t m = a.rows(), kk = a.cols(), n = b.cols();
  count_blocked_gemm(m, kk, n, true);
  QFC_OBS_SPAN("linalg.gemm", {{"m", m}, {"n", n}});
  std::vector<double> bre(kk * n), bim(kk * n);
  const cplx* pb = b.data();
  for (std::size_t k = 0; k < kk; ++k) {
    const cplx* brow = pb + k * n;
    double* r = bre.data() + k * n;
    double* s = bim.data() + k * n;
    for (std::size_t j = 0; j < n; ++j) {
      r[j] = brow[j].real();
      s[j] = brow[j].imag();
    }
  }
  const bool pooled = m * kk * n > kGemmFlopCutoff && m >= 2 * kGemmRowChunk && use_pool();
  for_row_chunks(pooled, m, kGemmRowChunk,
                 [&](std::size_t, std::size_t i0, std::size_t i1) {
                   std::vector<double> cre(n), cim(n);  // per-task accumulators
                   gemm_planar_rows_avx2(a.data(), kk, n, bre.data(), bim.data(),
                                         c.data(), i0, i1, cre.data(), cim.data());
                 });
}
#endif

void blocked_gemm_threaded(const RMat& a, const RMat& b, RMat& c) {
  const std::size_t m = a.rows(), kk = a.cols(), n = b.cols();
  count_blocked_gemm(m, kk, n, false);
  QFC_OBS_SPAN("linalg.gemm", {{"m", m}, {"n", n}});
  // Pack B transposed once so the dot micro-kernel walks unit-stride.
  std::vector<double> bt(n * kk);
  for (std::size_t k = 0; k < kk; ++k) {
    const double* brow = b.data() + k * n;
    for (std::size_t j = 0; j < n; ++j) bt[j * kk + k] = brow[j];
  }
  for_row_chunks(use_pool(), m, kGemmRowChunk,
                 [&](std::size_t, std::size_t i0, std::size_t i1) {
                   gemm_kernel_rows(a, bt, c, i0, i1);
                 });
}

void blocked_gemm_threaded(const CMat& a, const CMat& b, CMat& c) {
  count_blocked_gemm(a.rows(), a.cols(), b.cols(), true);
  QFC_OBS_SPAN("linalg.gemm", {{"m", a.rows()}, {"n", b.cols()}});
  for_row_chunks(use_pool(), a.rows(), kGemmRowChunk,
                 [&](std::size_t, std::size_t i0, std::size_t i1) {
                   gemm_kernel_rows(a, b, c, i0, i1);
                 });
}

// ------------------------------------------- round-robin rotation schedule

/// Chess-tournament schedule over m players (m even): m-1 rounds, each
/// pairing all players into m/2 disjoint pairs, every unordered pair exactly
/// once per sweep. Player m-1 stays fixed; the others rotate one seat per
/// round (classic circle method).
class RoundRobin {
 public:
  explicit RoundRobin(std::size_t m) : m_(m), ring_(m > 0 ? m - 1 : 0) {
    std::iota(ring_.begin(), ring_.end(), std::size_t{0});
  }

  std::size_t rounds() const noexcept { return m_ > 1 ? m_ - 1 : 0; }
  std::size_t pairs_per_round() const noexcept { return m_ / 2; }

  /// Pair i of the current round, normalized so p < q. Const — safe to call
  /// concurrently from pool tasks.
  std::pair<std::size_t, std::size_t> pair(std::size_t i) const {
    std::size_t x, y;
    if (i == 0) {
      x = m_ - 1;
      y = ring_[0];
    } else {
      x = ring_[i];
      y = ring_[m_ - 1 - i];
    }
    return x < y ? std::pair<std::size_t, std::size_t>{x, y}
                 : std::pair<std::size_t, std::size_t>{y, x};
  }

  void advance() { std::rotate(ring_.begin(), ring_.begin() + 1, ring_.end()); }

 private:
  std::size_t m_;
  std::vector<std::size_t> ring_;
};

using detail::jacobi_params;
using detail::JacobiParams;
using detail::off_diag_norm2;

// Below these dimensions the round-robin machinery (parameter snapshots,
// two-phase rounds) costs more than it saves even with the pool disabled;
// the cyclic path — the exact reference rotation order driven through the
// SIMD kernels, bitwise identical to Reference — is faster there.
constexpr std::size_t kEigCyclicMaxDim = 40;
constexpr std::size_t kSvdCyclicMaxDim = 40;

constexpr std::size_t kEigRowChunk = 16;  // A rows per phase-2 pool task
constexpr std::size_t kKronRowChunk = 1;  // A rows per kron pool task

// ------------------------------------------------------------- cyclic eig

/// Reference cyclic Jacobi, rotation-for-rotation, but with the column/row
/// updates running through the (bitwise-identical) SIMD kernels. Used below
/// kEigCyclicMaxDim, where it beats both the reference loop (vector width)
/// and the round-robin path (no per-round bookkeeping).
EigResult cyclic_hermitian_eig(const CMat& input, const EigOptions& opt) {
  const std::size_t n = input.rows();
  QFC_OBS_SPAN("linalg.eig.blocked", {{"n", n}});
  CMat a = hermitian_part(input);  // symmetrize away round-off
  CMat v = opt.want_vectors ? CMat::identity(n) : CMat();
  cplx* pa = a.data();
  cplx* pv = opt.want_vectors ? v.data() : nullptr;

  const double stop =
      detail::jacobi_stop_threshold(std::max(a.frobenius_norm(), 1e-300), n);

  std::uint64_t sweeps_done = 0, rotations_done = 0;
  bool converged = false;
  for (int sweep = 0; sweep < opt.max_sweeps; ++sweep) {
    if (off_diag_norm2(a) <= stop) {
      converged = true;
      break;
    }
    ++sweeps_done;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const cplx apq = a(p, q);
        const double mag = std::abs(apq);
        if (mag < 1e-300) continue;
        ++rotations_done;
        const JacobiParams jp =
            jacobi_params(std::real(a(p, p)), std::real(a(q, q)), apq, mag);
        const ColRot rot{p, q, jp.c, jp.sp};
        // Same update sequence as the reference sweep: columns p,q over all
        // rows, then rows p,q, then the pivot/diagonal cleanup, then V.
        apply_col_rotations(pa, n, 0, n, &rot, 1);
        rotate_pair(pa + p * n, pa + q * n, n, jp.c, jp.sp, std::conj(jp.sp));
        a(p, q) = cplx(0, 0);
        a(q, p) = cplx(0, 0);
        a(p, p) = cplx(std::real(a(p, p)), 0);
        a(q, q) = cplx(std::real(a(q, q)), 0);
        if (pv != nullptr) apply_col_rotations(pv, n, 0, n, &rot, 1);
      }
    }
  }
  if (!converged && off_diag_norm2(a) > stop)
    throw NumericalError("hermitian_eig(blocked): Jacobi did not converge");

  if (obs::metrics_enabled()) {
    obs::counter("linalg.blocked.eig.calls").increment();
    obs::counter("linalg.blocked.eig.sweeps").add(sweeps_done);
    obs::counter("linalg.blocked.eig.rotations").add(rotations_done);
  }
  return detail::finalize_eig(a, v, opt.want_vectors);
}

}  // namespace

// -------------------------------------------------------------- public API

void set_backend_threads(unsigned n) {
  std::lock_guard<std::mutex> lock(pool_mutex);
  thread_request() = n;
  pool_instance.reset();  // rebuilt lazily at the next kernel call
}

unsigned backend_threads() {
  std::lock_guard<std::mutex> lock(pool_mutex);
  return resolve_threads(thread_request());
}

unsigned backend_thread_request() {
  std::lock_guard<std::mutex> lock(pool_mutex);
  return thread_request();
}

void set_simd_enabled(bool on) {
  simd_request_slot().store(on, std::memory_order_relaxed);
}

bool simd_enabled() { return simd_active(); }

bool simd_request() { return simd_request_slot().load(std::memory_order_relaxed); }

SerialKernelScope::SerialKernelScope() { ++serial_scope_depth; }
SerialKernelScope::~SerialKernelScope() { --serial_scope_depth; }

namespace detail {

void blocked_gemm(const RMat& a, const RMat& b, RMat& c) {
  if (a.rows() * a.cols() * b.cols() <= kGemmFlopCutoff) {
    reference_gemm(a, b, c);
    return;
  }
  blocked_gemm_threaded(a, b, c);
}

void blocked_gemm(const CMat& a, const CMat& b, CMat& c) {
#if QFC_SIMD_X86
  if (simd_active()) {
    if (a.rows() * a.cols() * b.cols() <= kGemmAxpySimdCutoff) {
      count_blocked_gemm(a.rows(), a.cols(), b.cols(), true);
      gemm_axpy_rows_avx2(a, b, c);
      return;
    }
    blocked_gemm_planar(a, b, c);
    return;
  }
#endif
  if (a.rows() * a.cols() * b.cols() <= kGemmFlopCutoff) {
    reference_gemm(a, b, c);
    return;
  }
  blocked_gemm_threaded(a, b, c);
}

EigResult blocked_hermitian_eig(const CMat& input, const EigOptions& opt) {
  const std::size_t n = input.rows();
  if (n < kEigCyclicMaxDim) return cyclic_hermitian_eig(input, opt);

  QFC_OBS_SPAN("linalg.eig.blocked", {{"n", n}});
  const bool count_metrics = obs::metrics_enabled();
  std::uint64_t sweeps_done = 0, rotations_done = 0;

  CMat a = hermitian_part(input);  // symmetrize away round-off
  // The eigenvector accumulator is stored transposed (row j of `vt` is
  // column j of V) so its rotation updates are unit-stride rotate_pair
  // calls instead of stride-n column walks.
  CMat vt = opt.want_vectors ? CMat::identity(n) : CMat();
  cplx* pa = a.data();
  cplx* pvt = opt.want_vectors ? vt.data() : nullptr;

  const double stop =
      detail::jacobi_stop_threshold(std::max(a.frobenius_norm(), 1e-300), n);

  const std::size_t m = n + (n & 1);  // odd n: pad with a bye "player"
  struct Rot {
    std::size_t p = 0, q = 0;
    JacobiParams jp;
    bool active = false;
  };
  std::vector<Rot> rots(m / 2);
  std::vector<ColRot> active_cols;
  active_cols.reserve(m / 2);
  const std::size_t nchunks = (n + kEigRowChunk - 1) / kEigRowChunk;
  const auto wp = use_pool() ? pool() : std::shared_ptr<WorkerPool>();

  bool converged = false;
  for (int sweep = 0; sweep < opt.max_sweeps; ++sweep) {
    if (off_diag_norm2(a) <= stop) {
      converged = true;
      break;
    }
    ++sweeps_done;
    RoundRobin rr(m);
    for (std::size_t round = 0; round < rr.rounds(); ++round, rr.advance()) {
      // Parameters from the round-start snapshot. Each pair reads only its
      // own (p,p), (q,q), (p,q) entries, which no other pair of the round
      // touches, so the snapshot is consistent by construction.
      active_cols.clear();
      for (std::size_t i = 0; i < rots.size(); ++i) {
        const auto [p, q] = rr.pair(i);
        Rot& r = rots[i];
        r.p = p;
        r.q = q;
        r.active = false;
        if (q >= n) continue;  // bye pair
        const cplx apq = a(p, q);
        const double mag = std::abs(apq);
        if (mag < 1e-300) continue;
        r.jp = jacobi_params(std::real(a(p, p)), std::real(a(q, q)), apq, mag);
        r.active = true;
        active_cols.push_back(ColRot{p, q, r.jp.c, r.jp.sp});
        ++rotations_done;
      }

      // Phase 1 — left action J†A: rewrite rows p,q (contiguous memory,
      // disjoint across the round's pairs).
      run_tasks(wp, rots.size(), [&](std::size_t i) {
        const Rot& r = rots[i];
        if (!r.active) return;
        rotate_pair(pa + r.p * n, pa + r.q * n, n, r.jp.c, r.jp.sp,
                    std::conj(r.jp.sp));
      });

      // Phase 2 — right action (J†A)J, swept row-by-row: each A row applies
      // every rotation of the round (disjoint column pairs, so each element
      // is touched by exactly one rotation — bitwise identical to a per-pair
      // column walk, but unit-stride). The transposed eigenvector rows ride
      // in the same task batch.
      const std::size_t nv = pvt != nullptr ? active_cols.size() : 0;
      run_tasks(wp, nchunks + nv, [&](std::size_t t) {
        if (t < nchunks) {
          const std::size_t r0 = t * kEigRowChunk;
          const std::size_t r1 = std::min(r0 + kEigRowChunk, n);
          apply_col_rotations(pa, n, r0, r1, active_cols.data(), active_cols.size());
        } else {
          const ColRot& r = active_cols[t - nchunks];
          rotate_pair(pvt + r.p * n, pvt + r.q * n, n, r.c, std::conj(r.sp), r.sp);
        }
      });

      // Serial cleanup: zero the pivots exactly, enforce real diagonal
      // (same values the per-pair tasks used to write).
      for (const ColRot& r : active_cols) {
        a(r.p, r.q) = cplx(0, 0);
        a(r.q, r.p) = cplx(0, 0);
        a(r.p, r.p) = cplx(std::real(a(r.p, r.p)), 0);
        a(r.q, r.q) = cplx(std::real(a(r.q, r.q)), 0);
      }
    }
  }
  if (!converged && off_diag_norm2(a) > stop)
    throw NumericalError("hermitian_eig(blocked): parallel Jacobi did not converge");

  if (count_metrics) {
    obs::counter("linalg.blocked.eig.calls").increment();
    obs::counter("linalg.blocked.eig.sweeps").add(sweeps_done);
    obs::counter("linalg.blocked.eig.rotations").add(rotations_done);
  }
  CMat v = opt.want_vectors ? vt.transpose() : CMat();
  return finalize_eig(a, v, opt.want_vectors);
}

SvdResult blocked_svd(const CMat& a, int max_sweeps) {
  const std::size_t m0 = a.rows(), n0 = a.cols();
  // Work on the orientation with fewer columns, like the reference kernel.
  if (n0 > m0) {
    SvdResult t = blocked_svd(a.adjoint(), max_sweeps);
    return SvdResult{std::move(t.v), std::move(t.sigma), std::move(t.u)};
  }

  QFC_OBS_SPAN("linalg.svd.blocked", {{"m", m0}, {"n", n0}});
  const bool count_metrics = obs::metrics_enabled();
  std::atomic<std::uint64_t> rotations_done{0};
  std::uint64_t sweeps_done = 0;

  const std::size_t m = m0, n = n0;
  // Transposed working copies: row j of `wt` is column j of A and row j of
  // `vt` is column j of V, so every Gram dot product and rotation of the
  // one-sided Jacobi walks unit-stride memory.
  CMat wt = a.transpose();
  CMat vt = CMat::identity(n);
  cplx* pw = wt.data();
  cplx* pv = vt.data();

  // One column-pair step: Gram entries, negligibility test (reference
  // thresholds), then the rotation on both factors. Returns whether it
  // rotated. In scalar SIMD mode the cyclic order below reproduces the
  // reference SVD bitwise; the AVX2 Gram reduction relaxes that to 1e-10.
  const auto process_pair = [&](std::size_t p, std::size_t q) -> bool {
    cplx* rp = pw + p * m;
    cplx* rq = pw + q * m;
    const GramDot g = gram_dot(rp, rq, m);
    const double mag = std::abs(g.apq);
    const double threshold = 1e-15 * std::sqrt(g.app * g.aqq);
    if (mag <= threshold || mag < 1e-300) return false;
    if (count_metrics) rotations_done.fetch_add(1, std::memory_order_relaxed);
    const JacobiParams jp = jacobi_params(g.app, g.aqq, g.apq, mag);
    const cplx spc = std::conj(jp.sp);
    rotate_pair(rp, rq, m, jp.c, spc, jp.sp);
    rotate_pair(pv + p * n, pv + q * n, n, jp.c, spc, jp.sp);
    return true;
  };

  bool converged = false;
  if (n < kSvdCyclicMaxDim) {
    // Cyclic pair order, serial — reference rotation order.
    for (int sweep = 0; sweep < max_sweeps && !converged; ++sweep) {
      ++sweeps_done;
      bool rotated = false;
      for (std::size_t p = 0; p + 1 < n; ++p)
        for (std::size_t q = p + 1; q < n; ++q) rotated = process_pair(p, q) || rotated;
      converged = !rotated;
    }
  } else {
    const std::size_t mp = n + (n & 1);
    const auto wp = use_pool() ? pool() : std::shared_ptr<WorkerPool>();
    std::atomic<bool> any_rotation{false};
    for (int sweep = 0; sweep < max_sweeps && !converged; ++sweep) {
      ++sweeps_done;
      any_rotation.store(false, std::memory_order_relaxed);
      RoundRobin rr(mp);
      for (std::size_t round = 0; round < rr.rounds(); ++round, rr.advance()) {
        // One-sided rotations only touch their own two columns (= rows of
        // the transposed copies), so a round needs no phase split at all.
        run_tasks(wp, rr.pairs_per_round(), [&](std::size_t i) {
          const auto [p, q] = rr.pair(i);
          if (q >= n) return;  // bye pair
          if (process_pair(p, q)) any_rotation.store(true, std::memory_order_relaxed);
        });
      }
      converged = !any_rotation.load(std::memory_order_relaxed);
    }
  }
  if (!converged) throw NumericalError("svd(blocked): one-sided Jacobi did not converge");

  if (count_metrics) {
    obs::counter("linalg.blocked.svd.calls").increment();
    obs::counter("linalg.blocked.svd.sweeps").add(sweeps_done);
    obs::counter("linalg.blocked.svd.rotations")
        .add(rotations_done.load(std::memory_order_relaxed));
  }

  // Row norms of wt are the singular values; sort descending and transpose
  // the factors back into column-major-of-result form.
  RVec sigma(n);
  for (std::size_t j = 0; j < n; ++j) {
    double s = 0;
    const cplx* row = pw + j * m;
    for (std::size_t i = 0; i < m; ++i) s += std::norm(row[i]);
    sigma[j] = std::sqrt(s);
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return sigma[x] > sigma[y]; });

  SvdResult res;
  res.sigma.resize(n);
  res.u = CMat(m, n);
  res.v = CMat(n, n);
  const double smax = sigma.empty() ? 0.0 : sigma[order[0]];
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t src = order[j];
    res.sigma[j] = sigma[src];
    if (sigma[src] > 1e-14 * std::max(smax, 1.0)) {
      const cplx* wrow = pw + src * m;
      for (std::size_t i = 0; i < m; ++i) res.u(i, j) = wrow[i] / sigma[src];
    }  // else: null direction, U column stays zero (matches reference)
    const cplx* vrow = pv + src * n;
    for (std::size_t i = 0; i < n; ++i) res.v(i, j) = vrow[i];
  }
  return res;
}

// ------------------------------------------------------------ blocked kron
//
// out(i*rb+k, j*cb+l) = a(i,j) * b(k,l): each A entry scales a full B row
// into its output block (scale_row — SIMD complex, bitwise-identical
// product). Parallel over A rows; every output element is written by
// exactly one task with the same single multiply as the inline template,
// so results are bitwise identical across backends, SIMD modes, and
// thread counts.

template <class T>
void blocked_kron_impl(const Mat<T>& a, const Mat<T>& b, Mat<T>& out) {
  const std::size_t rb = b.rows(), cb = b.cols(), cols = out.cols();
  const T* pb = b.data();
  T* po = out.data();
  const bool pooled = a.rows() >= 2 && use_pool();
  for_row_chunks(pooled, a.rows(), kKronRowChunk,
                 [&](std::size_t, std::size_t i0, std::size_t i1) {
                   for (std::size_t i = i0; i < i1; ++i)
                     for (std::size_t j = 0; j < a.cols(); ++j) {
                       const T aij = a(i, j);
                       if (aij == T{}) continue;  // block stays zero
                       for (std::size_t k = 0; k < rb; ++k)
                         scale_row(po + (i * rb + k) * cols + j * cb, pb + k * cb, cb, aij);
                     }
                 });
}

void blocked_kron(const RMat& a, const RMat& b, RMat& out) {
  count_blocked_kron(out.size(), false);
  blocked_kron_impl(a, b, out);
}

void blocked_kron(const CMat& a, const CMat& b, CMat& out) {
  count_blocked_kron(out.size(), true);
  blocked_kron_impl(a, b, out);
}

// ----------------------------------------------------------- batch drivers

void parallel_batch(std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (count == 1) {
    fn(0);  // single problem: let the per-matrix kernel use the pool itself
    return;
  }
  if (!use_pool()) {
    // Inside a pool task (or single-threaded): same index order, inline.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  const auto wp = pool();
  wp->run(count, [&](std::size_t i) {
    // Per-matrix kernels inside a task must not re-enter the pool.
    SerialKernelScope scope;
    fn(i);
  });
}

std::vector<EigResult> blocked_hermitian_eig_batch(const std::vector<CMat>& as,
                                                   const EigOptions& opt) {
  std::vector<EigResult> out(as.size());
  parallel_batch(as.size(),
                 [&](std::size_t i) { out[i] = blocked_hermitian_eig(as[i], opt); });
  return out;
}

std::vector<SvdResult> blocked_svd_batch(const std::vector<CMat>& as, int max_sweeps) {
  std::vector<SvdResult> out(as.size());
  parallel_batch(as.size(),
                 [&](std::size_t i) { out[i] = blocked_svd(as[i], max_sweeps); });
  return out;
}

std::vector<CMat> blocked_gemm_batch(const std::vector<CMat>& as,
                                     const std::vector<CMat>& bs) {
  std::vector<CMat> out(as.size());
  parallel_batch(as.size(), [&](std::size_t i) {
    out[i] = CMat(as[i].rows(), bs[i].cols());
    blocked_gemm(as[i], bs[i], out[i]);
  });
  return out;
}

}  // namespace detail
}  // namespace qfc::linalg
