#pragma once

/// \file matrix_functions.hpp
/// Spectral functions of Hermitian matrices: sqrt, exp, log, power, and
/// the projection onto the PSD cone used by tomography reconstruction.

#include "qfc/linalg/matrix.hpp"

namespace qfc::linalg {

/// f(A) = V f(diag) V† for Hermitian A with eigenvalue map `f`.
CMat hermitian_function(const CMat& a, double (*f)(double));

/// Principal square root of a positive semidefinite Hermitian matrix.
/// Small negative eigenvalues (|λ| <= clip_tol) are clipped to zero;
/// larger negative ones throw NumericalError.
CMat sqrtm_psd(const CMat& a, double clip_tol = 1e-9);

/// exp(A) for Hermitian A.
CMat expm_hermitian(const CMat& a);

/// Project a Hermitian matrix onto the closest (Frobenius) unit-trace PSD
/// matrix — the standard step for turning a linear-inversion tomography
/// estimate into a physical density matrix (Smolin–Gambetta–Smith).
CMat project_to_density_matrix(const CMat& a);

}  // namespace qfc::linalg
