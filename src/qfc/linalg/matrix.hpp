#pragma once

/// \file matrix.hpp
/// Dense row-major matrix over real or complex scalars, plus the small set
/// of vector helpers used throughout the library. Hand-rolled on purpose:
/// the quantum-state dimensions in this project are modest (<= a few
/// hundred), so a simple, exhaustively-tested implementation beats an
/// external dependency. Matrix products route through the kernel-dispatch
/// seam in backend.hpp, so large multiplies pick up the cache-blocked /
/// threaded backend without any call-site changes.

#include <complex>
#include <cstddef>
#include <initializer_list>
#include <stdexcept>
#include <vector>

namespace qfc::linalg {

using cplx = std::complex<double>;
using CVec = std::vector<cplx>;
using RVec = std::vector<double>;

template <class T>
class Mat;

namespace detail {
inline double conj_if_complex(double x) { return x; }
inline cplx conj_if_complex(const cplx& x) { return std::conj(x); }
inline double abs2(double x) { return x * x; }
inline double abs2(const cplx& x) { return std::norm(x); }

/// c = a·b through the active linalg backend (see backend.hpp); c must be
/// zero-initialized (kernels may accumulate into it or overwrite it).
/// Defined in backend.cpp for the two scalar types the library instantiates.
template <class T>
void gemm_dispatch(const Mat<T>& a, const Mat<T>& b, Mat<T>& c);

/// out = a ⊗ b through the active linalg backend; out is pre-sized and
/// zero-initialized. Same explicit-specialization pattern as gemm_dispatch.
template <class T>
void kron_dispatch(const Mat<T>& a, const Mat<T>& b, Mat<T>& out);
}  // namespace detail

/// Dense row-major matrix. T is double or std::complex<double>.
template <class T>
class Mat {
 public:
  Mat() = default;

  Mat(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  /// Construct from nested initializer list: Mat<double>{{1,2},{3,4}}.
  Mat(std::initializer_list<std::initializer_list<T>> rows) {
    rows_ = rows.size();
    cols_ = rows_ == 0 ? 0 : rows.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& r : rows) {
      if (r.size() != cols_) throw std::invalid_argument("Mat: ragged initializer");
      data_.insert(data_.end(), r.begin(), r.end());
    }
  }

  static Mat identity(std::size_t n) {
    Mat m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  static Mat zeros(std::size_t r, std::size_t c) { return Mat(r, c); }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }
  bool is_square() const noexcept { return rows_ == cols_; }

  T& operator()(std::size_t i, std::size_t j) {
    check_index(i, j);
    return data_[i * cols_ + j];
  }
  const T& operator()(std::size_t i, std::size_t j) const {
    check_index(i, j);
    return data_[i * cols_ + j];
  }

  T* data() noexcept { return data_.data(); }
  const T* data() const noexcept { return data_.data(); }
  const std::vector<T>& storage() const noexcept { return data_; }

  Mat& operator+=(const Mat& o) {
    check_same_shape(o);
    for (std::size_t k = 0; k < data_.size(); ++k) data_[k] += o.data_[k];
    return *this;
  }
  Mat& operator-=(const Mat& o) {
    check_same_shape(o);
    for (std::size_t k = 0; k < data_.size(); ++k) data_[k] -= o.data_[k];
    return *this;
  }
  Mat& operator*=(T s) {
    for (auto& x : data_) x *= s;
    return *this;
  }

  friend Mat operator+(Mat a, const Mat& b) { return a += b; }
  friend Mat operator-(Mat a, const Mat& b) { return a -= b; }
  friend Mat operator*(Mat a, T s) { return a *= s; }
  friend Mat operator*(T s, Mat a) { return a *= s; }

  friend Mat operator*(const Mat& a, const Mat& b) {
    if (a.cols_ != b.rows_) throw std::invalid_argument("Mat::mul: shape mismatch");
    Mat c(a.rows_, b.cols_);
    // Tiny products (gates, Paulis, few-level ops) keep the fully inlined
    // loop — the cross-TU dispatch would cost more than the flops. The loop
    // is identical to the Reference backend's ikj kernel, so results do not
    // depend on which side of the cutoff a product lands.
    if (a.rows_ * a.cols_ * b.cols_ <= 4096) {
      for (std::size_t i = 0; i < a.rows_; ++i) {
        for (std::size_t k = 0; k < a.cols_; ++k) {
          const T aik = a(i, k);
          if (aik == T{}) continue;
          for (std::size_t j = 0; j < b.cols_; ++j) c(i, j) += aik * b(k, j);
        }
      }
    } else {
      detail::gemm_dispatch(a, b, c);
    }
    return c;
  }

  /// Matrix-vector product.
  friend std::vector<T> operator*(const Mat& a, const std::vector<T>& x) {
    if (a.cols_ != x.size()) throw std::invalid_argument("Mat::matvec: shape mismatch");
    std::vector<T> y(a.rows_, T{});
    for (std::size_t i = 0; i < a.rows_; ++i)
      for (std::size_t j = 0; j < a.cols_; ++j) y[i] += a(i, j) * x[j];
    return y;
  }

  Mat transpose() const {
    Mat t(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
    return t;
  }

  /// Conjugate transpose (== transpose for real T).
  Mat adjoint() const {
    Mat t(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t j = 0; j < cols_; ++j) t(j, i) = detail::conj_if_complex((*this)(i, j));
    return t;
  }

  Mat conj() const {
    Mat c = *this;
    for (auto& x : c.data_) x = detail::conj_if_complex(x);
    return c;
  }

  T trace() const {
    require_square("trace");
    T s{};
    for (std::size_t i = 0; i < rows_; ++i) s += (*this)(i, i);
    return s;
  }

  double frobenius_norm() const {
    double s = 0;
    for (const auto& x : data_) s += detail::abs2(x);
    return std::sqrt(s);
  }

  double max_abs() const {
    double m = 0;
    for (const auto& x : data_) m = std::max(m, std::abs(x));
    return m;
  }

  bool operator==(const Mat& o) const = default;

  void require_square(const char* who) const {
    if (!is_square()) throw std::invalid_argument(std::string(who) + ": matrix not square");
  }

 private:
  void check_index(std::size_t i, std::size_t j) const {
    if (i >= rows_ || j >= cols_) throw std::out_of_range("Mat: index out of range");
  }
  void check_same_shape(const Mat& o) const {
    if (rows_ != o.rows_ || cols_ != o.cols_)
      throw std::invalid_argument("Mat: shape mismatch");
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using CMat = Mat<cplx>;
using RMat = Mat<double>;

namespace detail {
// The only gemm_dispatch / kron_dispatch instantiations, defined in
// backend.cpp and declared here so every use of operator* / kron sees the
// explicit specialization before implicit instantiation ([temp.expl.spec]).
// Other scalar types have no backend and fail at link.
template <>
void gemm_dispatch<double>(const RMat& a, const RMat& b, RMat& c);
template <>
void gemm_dispatch<cplx>(const CMat& a, const CMat& b, CMat& c);
template <>
void kron_dispatch<double>(const RMat& a, const RMat& b, RMat& out);
template <>
void kron_dispatch<cplx>(const CMat& a, const CMat& b, CMat& out);
}  // namespace detail

/// Kronecker (tensor) product: (a ⊗ b)(i*rb+k, j*cb+l) = a(i,j)*b(k,l).
/// Large products route through the backend seam (cache-blocked, threaded,
/// SIMD-scaled row copies); every path computes each element with the same
/// single multiply, so the result is bitwise identical on either side of
/// the cutoff and across backends.
template <class T>
Mat<T> kron(const Mat<T>& a, const Mat<T>& b) {
  Mat<T> out(a.rows() * b.rows(), a.cols() * b.cols());
  if (out.size() > 1024) {
    detail::kron_dispatch(a, b, out);
    return out;
  }
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) {
      const T aij = a(i, j);
      if (aij == T{}) continue;
      for (std::size_t k = 0; k < b.rows(); ++k)
        for (std::size_t l = 0; l < b.cols(); ++l)
          out(i * b.rows() + k, j * b.cols() + l) = aij * b(k, l);
    }
  return out;
}

/// Kronecker product of vectors.
template <class T>
std::vector<T> kron(const std::vector<T>& a, const std::vector<T>& b) {
  std::vector<T> out(a.size() * b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = 0; j < b.size(); ++j) out[i * b.size() + j] = a[i] * b[j];
  return out;
}

/// Tr(a b) as an elementwise sum — O(n²) instead of the O(n³) matmul;
/// the hot path of every probability/expectation evaluation.
template <class T>
T trace_product(const Mat<T>& a, const Mat<T>& b) {
  if (a.cols() != b.rows() || a.rows() != b.cols())
    throw std::invalid_argument("trace_product: shape mismatch");
  T s{};
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) s += a(i, j) * b(j, i);
  return s;
}

/// Inner product <a|b> = sum conj(a_i) b_i (plain dot for real T).
template <class T>
T vdot(const std::vector<T>& a, const std::vector<T>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("vdot: size mismatch");
  T s{};
  for (std::size_t i = 0; i < a.size(); ++i) s += detail::conj_if_complex(a[i]) * b[i];
  return s;
}

/// Euclidean norm of a vector.
template <class T>
double vnorm(const std::vector<T>& v) {
  double s = 0;
  for (const auto& x : v) s += detail::abs2(x);
  return std::sqrt(s);
}

/// Normalize in place; throws on (near-)zero vectors.
template <class T>
void vnormalize(std::vector<T>& v) {
  const double n = vnorm(v);
  if (n < 1e-300) throw std::invalid_argument("vnormalize: zero vector");
  for (auto& x : v) x *= (1.0 / n);
}

/// Outer product |a><b| (b is conjugated for complex T).
template <class T>
Mat<T> outer(const std::vector<T>& a, const std::vector<T>& b) {
  Mat<T> m(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = 0; j < b.size(); ++j)
      m(i, j) = a[i] * detail::conj_if_complex(b[j]);
  return m;
}

/// Convert a real matrix to complex.
CMat to_complex(const RMat& r);

/// Hermitian part (A + A†)/2.
CMat hermitian_part(const CMat& a);

/// True if ||A - A†||_max <= tol.
bool is_hermitian(const CMat& a, double tol = 1e-10);

/// True if ||A†A - I||_max <= tol.
bool is_unitary(const CMat& a, double tol = 1e-10);

}  // namespace qfc::linalg
