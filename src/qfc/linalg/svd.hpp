#pragma once

/// \file svd.hpp
/// One-sided Jacobi singular value decomposition for complex dense matrices.
/// Used for Schmidt decompositions of joint spectral amplitudes and
/// two-party state vectors.

#include "qfc/linalg/matrix.hpp"

namespace qfc::linalg {

struct SvdResult {
  CMat u;       ///< m x r, orthonormal columns (left singular vectors)
  RVec sigma;   ///< r singular values, descending, non-negative
  CMat v;       ///< n x r, orthonormal columns; A = U diag(sigma) V†
};

/// Thin SVD A = U Σ V† with r = min(m, n). Throws NumericalError if the
/// Jacobi orthogonalization fails to converge.
SvdResult svd(const CMat& a, int max_sweeps = 96);

}  // namespace qfc::linalg
