#pragma once

#include <stdexcept>
#include <string>

namespace qfc {

/// Thrown when an iterative numerical routine fails to converge or a
/// decomposition encounters an invalid (e.g. singular, non-PSD) input.
class NumericalError : public std::runtime_error {
 public:
  explicit NumericalError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace qfc
