#include "qfc/linalg/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "qfc/linalg/backend.hpp"
#include "qfc/linalg/error.hpp"
#include "qfc/obs/obs.hpp"

namespace qfc::linalg {
namespace {

/// One-sided Jacobi on columns of `w` (m x n, m >= n not required),
/// accumulating right rotations into `v` (n x n). After convergence the
/// columns of `w` are mutually orthogonal: w = U Σ, original A = w v†... –
/// precisely, A v = w, so A = w v† with unitary v.
void orthogonalize_columns(CMat& w, CMat& v, int max_sweeps) {
  const std::size_t n = w.cols();
  const std::size_t m = w.rows();

  std::uint64_t sweeps_done = 0, rotations_done = 0;
  const auto flush_counts = [&] {
    if (!obs::metrics_enabled()) return;
    obs::counter("linalg.reference.svd.sweeps").add(sweeps_done);
    obs::counter("linalg.reference.svd.rotations").add(rotations_done);
  };
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    ++sweeps_done;
    bool rotated = false;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        // Gram entries of columns p,q.
        double app = 0, aqq = 0;
        cplx apq(0, 0);
        for (std::size_t k = 0; k < m; ++k) {
          app += std::norm(w(k, p));
          aqq += std::norm(w(k, q));
          apq += std::conj(w(k, p)) * w(k, q);
        }
        const double mag = std::abs(apq);
        const double threshold = 1e-15 * std::sqrt(app * aqq);
        if (mag <= threshold || mag < 1e-300) continue;
        rotated = true;
        ++rotations_done;

        const auto [c, sp] = detail::jacobi_params(app, aqq, apq, mag);

        for (std::size_t k = 0; k < m; ++k) {
          const cplx wkp = w(k, p);
          const cplx wkq = w(k, q);
          w(k, p) = c * wkp - std::conj(sp) * wkq;
          w(k, q) = sp * wkp + c * wkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const cplx vkp = v(k, p);
          const cplx vkq = v(k, q);
          v(k, p) = c * vkp - std::conj(sp) * vkq;
          v(k, q) = sp * vkp + c * vkq;
        }
      }
    }
    if (!rotated) {
      flush_counts();
      return;
    }
  }
  throw NumericalError("svd: one-sided Jacobi did not converge");
}

}  // namespace

namespace detail {

SvdResult reference_svd(const CMat& a, int max_sweeps) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();

  // Work on the orientation with fewer columns for efficiency/stability,
  // then swap factors back: A† = V Σ U†.
  if (n > m) {
    SvdResult t = reference_svd(a.adjoint(), max_sweeps);
    return SvdResult{std::move(t.v), std::move(t.sigma), std::move(t.u)};
  }

  QFC_OBS_SPAN("linalg.svd.reference", {{"m", m}, {"n", n}});
  if (obs::metrics_enabled()) obs::counter("linalg.reference.svd.calls").increment();
  CMat w = a;
  CMat v = CMat::identity(n);
  orthogonalize_columns(w, v, max_sweeps);

  // Column norms are the singular values.
  RVec sigma(n);
  for (std::size_t j = 0; j < n; ++j) {
    double s = 0;
    for (std::size_t i = 0; i < m; ++i) s += std::norm(w(i, j));
    sigma[j] = std::sqrt(s);
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return sigma[x] > sigma[y]; });

  SvdResult res;
  res.sigma.resize(n);
  res.u = CMat(m, n);
  res.v = CMat(n, n);
  const double smax = sigma.empty() ? 0.0 : sigma[order[0]];
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t src = order[j];
    res.sigma[j] = sigma[src];
    if (sigma[src] > 1e-14 * std::max(smax, 1.0)) {
      for (std::size_t i = 0; i < m; ++i) res.u(i, j) = w(i, src) / sigma[src];
    } else {
      // Null direction: leave U column zero (thin SVD consumers only use
      // columns with nonzero sigma); keep sigma as the tiny value.
      for (std::size_t i = 0; i < m; ++i) res.u(i, j) = cplx(0, 0);
    }
    for (std::size_t i = 0; i < n; ++i) res.v(i, j) = v(i, src);
  }
  return res;
}

}  // namespace detail

SvdResult svd(const CMat& a, int max_sweeps) {
  if (a.empty()) throw std::invalid_argument("svd: empty matrix");
  QFC_OBS_SPAN("linalg.svd", {{"n", a.cols()}, {"backend", backend().name()}});
  return backend().svd(a, max_sweeps);
}

}  // namespace qfc::linalg
