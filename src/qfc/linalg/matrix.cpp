#include "qfc/linalg/matrix.hpp"

namespace qfc::linalg {

CMat to_complex(const RMat& r) {
  CMat c(r.rows(), r.cols());
  for (std::size_t i = 0; i < r.rows(); ++i)
    for (std::size_t j = 0; j < r.cols(); ++j) c(i, j) = cplx(r(i, j), 0.0);
  return c;
}

CMat hermitian_part(const CMat& a) {
  a.require_square("hermitian_part");
  CMat h = a;
  h += a.adjoint();
  h *= cplx(0.5, 0.0);
  return h;
}

bool is_hermitian(const CMat& a, double tol) {
  if (!a.is_square()) return false;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = i; j < a.cols(); ++j)
      if (std::abs(a(i, j) - std::conj(a(j, i))) > tol) return false;
  return true;
}

bool is_unitary(const CMat& a, double tol) {
  if (!a.is_square()) return false;
  const CMat p = a.adjoint() * a;
  for (std::size_t i = 0; i < p.rows(); ++i)
    for (std::size_t j = 0; j < p.cols(); ++j) {
      const cplx expect = (i == j) ? cplx(1, 0) : cplx(0, 0);
      if (std::abs(p(i, j) - expect) > tol) return false;
    }
  return true;
}

}  // namespace qfc::linalg
