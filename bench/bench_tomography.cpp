// E9 (Sec. V): quantum state tomography — Bell-state density matrices per
// channel pair and the four-photon state with fidelity 64%. Ablation:
// MLE vs (projected) linear inversion under shot noise.

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "qfc/core/comb_source.hpp"
#include "qfc/linalg/hermitian_eig.hpp"
#include "qfc/linalg/matrix_functions.hpp"
#include "qfc/quantum/bell.hpp"
#include "qfc/quantum/measures.hpp"
#include "qfc/tomo/tomography.hpp"

int main() {
  using namespace qfc;
  bench::header("E9  bench_tomography",
                "quantum state tomography: Bell states confirmed per channel; "
                "four-photon density matrix fidelity 64% vs ideal");

  auto comb = core::QuantumFrequencyComb::for_configuration(
      core::PumpConfiguration::DoublePulseFourMode);
  auto exp = comb.four_photon({});
  const auto r = exp.run();

  std::printf("Bell-state tomography (MLE):\n");
  std::printf("  channel pair A fidelity: %.3f\n", r.bell_fidelity_a);
  std::printf("  channel pair B fidelity: %.3f\n", r.bell_fidelity_b);
  std::printf("four-photon tomography (1296-outcome, 81 settings, MLE):\n");
  std::printf("  reconstructed fidelity vs |Phi>⊗|Phi>: %.3f  (paper: 0.64)\n",
              r.four_photon_fidelity);
  std::printf("  true (noise-model) state fidelity:     %.3f\n",
              r.four_photon_state_fidelity);
  std::printf("  MLE iterations (pair / four-photon):   %d / %d\n",
              r.tomo_iterations_pair, r.tomo_iterations_four);

  // Ablation: MLE vs projected linear inversion at several shot counts.
  std::printf("\nablation: reconstruction method vs shots per setting (2-qubit "
              "Werner V=0.83)\n");
  std::printf("%10s %16s %16s %18s\n", "shots", "F(linear+proj)", "F(MLE)",
              "min eig (linear)");
  const auto rho = quantum::werner_phi(0.83);
  for (double shots : {25.0, 100.0, 400.0, 1600.0}) {
    rng::Xoshiro256 g(static_cast<std::uint64_t>(shots));
    const auto data = tomo::simulate_counts(rho, shots, {}, g);
    const auto lin = tomo::linear_inversion(data);
    const auto lin_evals = linalg::hermitian_eigenvalues(lin);
    const auto lin_proj =
        quantum::DensityMatrix(linalg::project_to_density_matrix(lin), 1e-6);
    const auto mle = tomo::maximum_likelihood(data);
    std::printf("%10.0f %16.3f %16.3f %18.4f\n", shots,
                quantum::fidelity(lin_proj, rho), quantum::fidelity(mle.rho, rho),
                lin_evals.back());
  }

  const bool ok = std::abs(r.four_photon_fidelity - 0.64) < 0.12 &&
                  r.bell_fidelity_a > 0.75 && r.bell_fidelity_b > 0.75;
  bench::verdict(ok, "four-photon fidelity ≈ 64% with high per-pair Bell "
                     "fidelities; MLE beats raw linear inversion at low counts");
  return ok ? 0 : 1;
}
