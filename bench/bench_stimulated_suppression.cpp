// E6 (Sec. III): the designed TE/TM resonance offset makes the stimulated
// FWM bands non-resonant, suppressing the classical process completely
// while spontaneous type-II FWM stays phase-matched. Ablation: suppression
// vs waveguide-height sweep (the design knob).

#include <cstdio>

#include "bench_util.hpp"
#include "qfc/photonics/constants.hpp"
#include "qfc/photonics/device_presets.hpp"
#include "qfc/photonics/material.hpp"
#include "qfc/sfwm/phase_matching.hpp"

int main() {
  using namespace qfc;
  using photonics::Polarization;
  bench::header("E6  bench_stimulated_suppression",
                "TE/TM resonance offset suppresses stimulated FWM completely; "
                "similar FSRs keep spontaneous type-II FWM phase-matched");

  std::printf("%14s %16s %18s %20s %22s\n", "height (um)", "offset (GHz)",
              "suppression (dB)", "type-II |dNu| k=1", "type-II PM factor k=1");

  bool grows_with_asymmetry = true;
  double suppression_at_design = 0, suppression_square = 0;
  for (double h_um : {1.50, 1.48, 1.46, 1.44, 1.42, 1.40}) {
    const photonics::Waveguide wg({1.50e-6, h_um * 1e-6}, photonics::hydex());
    const double ng = wg.group_index(photonics::itu_anchor_hz, Polarization::TE);
    const double radius =
        photonics::speed_of_light_m_per_s / (ng * 200e9 * 2.0 * photonics::pi);
    const double t = photonics::design_symmetric_coupling_for_linewidth(
        wg, radius, 6.0, 80e6, photonics::itu_anchor_hz);
    const photonics::MicroringResonator ring(wg, radius, t, t, 6.0);

    const double te =
        ring.nearest_resonance_hz(photonics::itu_anchor_hz, Polarization::TE);
    const double tm = ring.nearest_resonance_hz(te, Polarization::TM);
    const double offset = sfwm::te_tm_grid_offset_hz(ring, te);
    const double supp = sfwm::stimulated_fwm_suppression_db(ring, te, tm);
    const double mism = sfwm::type2_energy_mismatch_hz(ring, te, tm, 1);
    const double lw = ring.linewidth_hz(te, Polarization::TE);
    const double pm = sfwm::lorentzian_pm_factor(mism, lw, lw);

    std::printf("%14.2f %16.2f %18.1f %15.1f MHz %22.3f\n", h_um, offset / 1e9, supp,
                std::abs(mism) / 1e6, pm);

    if (h_um == 1.50) suppression_square = supp;
    if (h_um == 1.42) suppression_at_design = supp;
  }

  std::printf("\nsquare core (no offset): %.1f dB — stimulated FWM NOT suppressed\n",
              suppression_square);
  std::printf("design core (1.42 um):   %.1f dB — stimulated FWM suppressed\n",
              suppression_at_design);

  const bool ok = suppression_square < 3.0 && suppression_at_design > 20.0 &&
                  grows_with_asymmetry;
  bench::verdict(ok, "suppression appears only with the designed birefringent "
                     "offset, while type-II spontaneous FWM stays phase-matched");
  return ok ? 0 : 1;
}
