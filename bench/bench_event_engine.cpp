// Perf bench for the batched columnar event engine: full n-channel-pair
// CAR (coincidence) matrix, legacy per-channel path (per-channel streams +
// n² pairwise measure_car re-scans) vs EventEngine + single merge-sweep
// car_matrix, engine-only rows for the pulsed and piecewise-rate emission
// modes, analysis thread-scaling rows (the sharded car_matrix /
// correlate_all sweeps at 1/2/4 workers), and streaming rows: a
// bounded-memory probe (peak RSS must stay flat across a 10x run-length
// increase — the bounded_rss flag) plus a window-size sweep of the
// streamed generation + online CAR path. Also checks that the two CW
// paths produce identical cells, that every emission mode is bitwise
// invariant across generation thread counts, that the sharded analysis
// sweeps are bitwise invariant across analysis worker counts, and that
// every streamed CAR is bitwise identical to the batch one.
//
// Usage: bench_event_engine [--smoke] [--json PATH] [--help]
//   --smoke   smaller durations / channel counts (CI)
//   --json    write machine-readable results (default BENCH_event_engine.json;
//             gated in CI by scripts/check_bench.py — see --help)

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "bench_util.hpp"
#include "qfc/detect/channel_rng.hpp"
#include "qfc/detect/coincidence.hpp"
#include "qfc/detect/detector.hpp"
#include "qfc/detect/event_engine.hpp"
#include "qfc/detect/event_stream.hpp"
#include "qfc/detect/streaming.hpp"
#include "qfc/obs/obs.hpp"
#include "qfc/rng/xoshiro.hpp"

namespace {

using namespace qfc;
using Clock = std::chrono::steady_clock;

/// Peak resident set size so far (getrusage ru_maxrss, kilobytes on Linux),
/// or 0 where unavailable — groundwork for the streaming engine's fixed-RSS
/// claim: the full-table rows recorded here are the baseline to beat.
long peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
    return ru.ru_maxrss / 1024;  // macOS reports bytes
#else
    return ru.ru_maxrss;
#endif
  }
#endif
  return 0;
}

constexpr double kWindow = 8e-9;
constexpr double kSpacing = 100e-9;
constexpr std::uint64_t kSeed = 20170327;

std::vector<detect::ChannelPairSpec> make_specs(int n) {
  std::vector<detect::ChannelPairSpec> specs;
  specs.reserve(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    detect::ChannelPairSpec s;
    s.pair_rate_hz = 40e3 + 2e3 * (k % 7);  // mild channel-to-channel ripple
    s.linewidth_hz = 110e6;
    s.transmission_signal = 0.8;
    s.transmission_idler = 0.78;
    s.detector_signal.efficiency = 0.2;
    s.detector_signal.dark_rate_hz = 12e3;
    s.detector_signal.jitter_sigma_s = 120e-12;
    s.detector_signal.dead_time_s = 10e-6;
    s.detector_idler = s.detector_signal;
    specs.push_back(s);
  }
  return specs;
}

/// Pulsed double-pulse emission at the same mean pair rate and detector
/// chain as make_specs, locked to a 16.8 MHz train with early/late bins.
std::vector<detect::ChannelPairSpec> make_pulsed_specs(int n) {
  auto specs = make_specs(n);
  for (auto& s : specs) {
    s.emission = detect::EmissionMode::Pulsed;
    s.pulsed.repetition_rate_hz = 16.8e6;
    s.pulsed.mean_pairs_per_pulse = s.pair_rate_hz / s.pulsed.repetition_rate_hz;
    s.pulsed.bin_separation_s = 20e-9;
    s.pulsed.pulse_sigma_s = 1.5e-9;
    s.pair_rate_hz = 0;
  }
  return specs;
}

/// Drifting-source schedule: 8 segments ramping the pair rate 0.5x..1.5x
/// around make_specs' mean, with background/dark drift riding along.
std::vector<detect::ChannelPairSpec> make_piecewise_specs(int n, double duration_s) {
  auto specs = make_specs(n);
  const int num_segments = 8;
  for (auto& s : specs) {
    s.emission = detect::EmissionMode::PiecewiseRates;
    const double base = s.pair_rate_hz;
    s.pair_rate_hz = 0;
    for (int i = 0; i < num_segments; ++i) {
      const double x = static_cast<double>(i) / (num_segments - 1);  // 0..1 ramp
      detect::RateSegment seg;
      seg.duration_s = duration_s / num_segments;
      seg.pair_rate_hz = base * (0.5 + x);
      seg.background_rate_signal_hz = 4e3 * x;
      seg.background_rate_idler_hz = 4e3 * (1.0 - x);
      seg.dark_rate_signal_hz = 2e3 * x;
      seg.dark_rate_idler_hz = 2e3 * x;
      s.segments.push_back(seg);
    }
  }
  return specs;
}

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Legacy path: per-channel streams through the single-stream kernels
/// (same fork-per-channel and per-stage sub-stream seeding as the engine,
/// so the streams match), then n x n pairwise measure_car re-scans of the
/// full click vectors.
std::vector<detect::CarResult> legacy_car_matrix(
    const std::vector<detect::ChannelPairSpec>& specs, double duration_s) {
  const std::size_t n = specs.size();
  std::vector<std::vector<double>> sig(n), idl(n);
  const std::vector<double> no_extra_darks;
  rng::Xoshiro256 master(kSeed);
  for (std::size_t c = 0; c < n; ++c) {
    rng::Xoshiro256 g = master.fork(static_cast<std::uint64_t>(c + 1));
    detect::detail::ChannelRngs r = detect::detail::fork_channel_rngs(g);
    detect::PairStreamParams p;
    p.pair_rate_hz = specs[c].pair_rate_hz;
    p.linewidth_hz = specs[c].linewidth_hz;
    p.duration_s = duration_s;
    p.transmission_a = specs[c].transmission_signal;
    p.transmission_b = specs[c].transmission_idler;
    const auto photons = detect::generate_pair_arrivals(p, r.pair);
    sig[c] = detect::SinglePhotonDetector(specs[c].detector_signal)
                 .detect(photons.a, no_extra_darks, duration_s, r.det_a, r.dark_a);
    idl[c] = detect::SinglePhotonDetector(specs[c].detector_idler)
                 .detect(photons.b, no_extra_darks, duration_s, r.det_b, r.dark_b);
  }
  std::vector<detect::CarResult> cells;
  cells.reserve(n * n);
  for (std::size_t s = 0; s < n; ++s)
    for (std::size_t i = 0; i < n; ++i)
      cells.push_back(detect::measure_car(sig[s], idl[i], kWindow, kSpacing));
  return cells;
}

detect::CarMatrix engine_car_matrix(const std::vector<detect::ChannelPairSpec>& specs,
                                    double duration_s, int num_threads,
                                    std::size_t* total_events = nullptr) {
  detect::EngineConfig ec;
  ec.duration_s = duration_s;
  ec.seed = kSeed;
  ec.num_threads = num_threads;
  const detect::EngineResult events = detect::EventEngine(ec).run(specs);
  if (total_events != nullptr) *total_events = events.signal.size() + events.idler.size();
  return detect::car_matrix(events.signal, events.idler, kWindow, kSpacing);
}

bool cells_identical(const std::vector<detect::CarResult>& legacy,
                     const detect::CarMatrix& engine) {
  if (legacy.size() != engine.cells.size()) return false;
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    if (legacy[i].coincidences != engine.cells[i].coincidences) return false;
    if (legacy[i].accidentals != engine.cells[i].accidentals) return false;
  }
  return true;
}

struct Row {
  int n = 0;
  double legacy_ms = 0;
  double engine_ms = 0;
  double speedup = 0;
  bool identical = false;
  std::size_t events = 0;       ///< detected clicks in the engine tables
  double events_per_sec = 0;    ///< clicks through generate+analyze per wall second
  long max_rss_kb = 0;          ///< peak RSS after this row (monotonic across rows)
};

/// Engine-only row for the pulsed / piecewise emission modes (no legacy
/// path exists for them): run time plus a per-row thread-count
/// determinism check (1 vs 4 workers, bitwise).
struct ModeRow {
  const char* emission = "";
  int n = 0;
  double engine_ms = 0;
  bool deterministic = false;
};

ModeRow bench_mode(const char* emission, const std::vector<detect::ChannelPairSpec>& specs,
                   double duration_s) {
  detect::EngineConfig ec;
  ec.duration_s = duration_s;
  ec.seed = kSeed;

  ec.num_threads = 0;
  auto t0 = Clock::now();
  const detect::EngineResult events = detect::EventEngine(ec).run(specs);
  detect::car_matrix(events.signal, events.idler, kWindow, kSpacing);
  const double engine_ms = ms_since(t0);

  ec.num_threads = 1;
  const auto r1 = detect::EventEngine(ec).run(specs);
  ec.num_threads = 4;
  const auto r4 = detect::EventEngine(ec).run(specs);

  ModeRow row;
  row.emission = emission;
  row.n = static_cast<int>(specs.size());
  row.engine_ms = engine_ms;
  row.deterministic = r1.signal == r4.signal && r1.idler == r4.idler;
  return row;
}

/// Analysis thread-scaling row: the sharded car_matrix + correlate_all
/// sweeps over one fixed table at an explicit worker count, with a bitwise
/// determinism flag vs the 1-worker sweep and the speedup ratio vs the
/// 1-worker time (the quantity the CI ratio gate watches).
struct AnalysisRow {
  int threads = 0;
  double car_ms = 0;
  double correlate_ms = 0;
  double speedup_vs_1t = 0;
  bool deterministic = false;
};

std::vector<AnalysisRow> bench_analysis_threads(const detect::EngineResult& events) {
  std::vector<AnalysisRow> rows;
  detect::CarMatrix cells_1t;
  std::vector<detect::CoincidenceHistogram> hists_1t;
  const unsigned saved_request = detect::analysis_thread_request();
  for (const int threads : {1, 2, 4}) {
    AnalysisRow row;
    row.threads = threads;

    // Route through the process-wide cached pool (num_threads = 0) and
    // build it with an untimed warm-up sweep, so the timed region measures
    // the sharded sweep only — never worker spawn/teardown, which would
    // bias speedup_vs_1t toward whichever leg matches the cached pool size.
    detect::set_analysis_threads(static_cast<unsigned>(threads));
    detect::car_matrix(events.signal, events.idler, kWindow, kSpacing);

    auto t0 = Clock::now();
    const auto cells =
        detect::car_matrix(events.signal, events.idler, kWindow, kSpacing);
    row.car_ms = ms_since(t0);

    t0 = Clock::now();
    const auto hists = detect::correlate_all(events.signal, events.idler, 1e-9, 50e-9);
    row.correlate_ms = ms_since(t0);

    if (threads == 1) {
      cells_1t = cells;
      hists_1t = hists;
      row.deterministic = true;
      row.speedup_vs_1t = 1.0;
    } else {
      bool same = cells.cells.size() == cells_1t.cells.size() &&
                  hists.size() == hists_1t.size();
      for (std::size_t i = 0; same && i < cells.cells.size(); ++i)
        same = cells.cells[i].coincidences == cells_1t.cells[i].coincidences &&
               cells.cells[i].accidentals == cells_1t.cells[i].accidentals;
      for (std::size_t c = 0; same && c < hists.size(); ++c)
        same = hists[c].counts == hists_1t[c].counts;
      row.deterministic = same;
      row.speedup_vs_1t = row.car_ms > 0 ? rows[0].car_ms / row.car_ms : 0;
    }
    rows.push_back(row);
  }
  detect::set_analysis_threads(saved_request);
  return rows;
}

bool car_cells_identical(const detect::CarMatrix& a, const detect::CarMatrix& b) {
  if (a.cells.size() != b.cells.size()) return false;
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    if (a.cells[i].coincidences != b.cells[i].coincidences) return false;
    if (a.cells[i].accidentals != b.cells[i].accidentals) return false;
  }
  return true;
}

/// Streamed generation + online CAR: windowed engine into the streaming
/// accumulator, consumed windows discarded as they resolve.
detect::CarMatrix run_streamed_car(const std::vector<detect::ChannelPairSpec>& specs,
                                   double duration_s, double window_s,
                                   std::size_t* events_out = nullptr) {
  detect::EngineConfig ec;
  ec.duration_s = duration_s;
  ec.seed = kSeed;
  detect::StreamConfig sc;
  sc.window_s = window_s;
  detect::EventStreamer streamer(ec, sc, specs);
  detect::StreamingCarAccumulator car(kWindow, kSpacing);
  detect::StreamWindow w;
  std::size_t events = 0;
  while (streamer.next(w)) {
    events += w.events.signal.size() + w.events.idler.size();
    car.push(w);
  }
  if (events_out != nullptr) *events_out = events;
  return car.finish();
}

/// Streaming window-size sweep row: streamed run wall time and throughput
/// at one window size, with the bitwise CAR-parity flag vs the batch path.
struct StreamRow {
  double window_s = 0;
  double stream_ms = 0;
  std::size_t events = 0;
  double events_per_sec = 0;
  long max_rss_kb = 0;
  bool identical = false;
};

}  // namespace

int main(int argc, char** argv) {
  const auto [smoke, json_path] =
      bench::parse_flags(argc, argv, "BENCH_event_engine.json");

  // Run-scoped metrics aggregate for the "obs" envelope member. Stays empty
  // unless obs is enabled (QFC_OBS_TRACE / QFC_OBS_METRICS, see --help).
  const obs::RunReport obs_report;

  bench::header("P1  bench_event_engine",
                "batched columnar engine >= 5x faster than the legacy "
                "per-channel path on a 10-pair coincidence matrix, bitwise "
                "thread-count invariant");

  const double duration_s = smoke ? 0.5 : 2.0;
  const std::vector<int> channel_counts =
      smoke ? std::vector<int>{1, 2, 5, 10} : std::vector<int>{1, 2, 5, 10, 20, 35, 50};

  // Streaming bounded-memory probe. ru_maxrss is monotonic, so these rows
  // run before anything else builds full batch tables: the streamed run at
  // duration D sets the RSS peak, and re-running at 10 D with the same
  // window must not move it (windows are discarded as the accumulator
  // resolves them) — flat peak RSS across the 10x growth IS the
  // bounded-memory claim (bounded_rss, gated by check_bench.py).
  const int probe_n = smoke ? 5 : 10;
  const double probe_duration_s = smoke ? 0.3 : 1.0;
  const double probe_window_s = probe_duration_s / 20.0;
  const auto probe_specs = make_specs(probe_n);
  std::size_t probe_events = 0, probe_events_10x = 0;
  auto t_probe = Clock::now();
  run_streamed_car(probe_specs, probe_duration_s, probe_window_s, &probe_events);
  const double probe_base_ms = ms_since(t_probe);
  const long rss_base_kb = peak_rss_kb();
  t_probe = Clock::now();
  run_streamed_car(probe_specs, 10.0 * probe_duration_s, probe_window_s,
                   &probe_events_10x);
  const double probe_10x_ms = ms_since(t_probe);
  const long rss_10x_kb = peak_rss_kb();
  const bool bounded_rss =
      rss_base_kb > 0 && rss_10x_kb <= rss_base_kb + rss_base_kb / 10;
  std::printf(
      "streaming bounded-memory probe (n=%d, window %.3g s): %.1f s -> %ld KB "
      "(%zu ev), %.1f s -> %ld KB (%zu ev): %s\n",
      probe_n, probe_window_s, probe_duration_s, rss_base_kb, probe_events,
      10.0 * probe_duration_s, rss_10x_kb, probe_events_10x,
      bounded_rss ? "flat (bounded)" : "GREW > 10%");

  std::printf("duration per run: %.2f s, window %.0f ns, spacing %.0f ns\n",
              duration_s, kWindow * 1e9, kSpacing * 1e9);
  std::printf("%6s %12s %12s %9s %10s %17s %12s\n", "n", "legacy[ms]", "engine[ms]",
              "speedup", "identical", "throughput", "peak RSS");

  std::vector<Row> rows;
  double speedup_n10 = 0;
  bool all_identical = true;
  for (const int n : channel_counts) {
    const auto specs = make_specs(n);

    auto t0 = Clock::now();
    const auto legacy = legacy_car_matrix(specs, duration_s);
    const double legacy_ms = ms_since(t0);

    t0 = Clock::now();
    std::size_t total_events = 0;
    const auto engine = engine_car_matrix(specs, duration_s, /*num_threads=*/0,
                                          &total_events);
    const double engine_ms = ms_since(t0);

    Row row;
    row.n = n;
    row.legacy_ms = legacy_ms;
    row.engine_ms = engine_ms;
    row.speedup = engine_ms > 0 ? legacy_ms / engine_ms : 0;
    row.identical = cells_identical(legacy, engine);
    row.events = total_events;
    row.events_per_sec =
        engine_ms > 0 ? static_cast<double>(total_events) / (engine_ms / 1e3) : 0;
    row.max_rss_kb = peak_rss_kb();
    rows.push_back(row);
    all_identical = all_identical && row.identical;
    if (n == 10) speedup_n10 = row.speedup;

    std::printf("%6d %12.1f %12.1f %8.1fx %10s %12.3g ev/s %9ld KB\n", n, legacy_ms,
                engine_ms, row.speedup, row.identical ? "yes" : "NO",
                row.events_per_sec, row.max_rss_kb);
  }

  // Determinism: same seed, different thread counts -> bitwise equal tables.
  const auto specs10 = make_specs(10);
  detect::EngineConfig ec;
  ec.duration_s = duration_s;
  ec.seed = kSeed;
  ec.num_threads = 1;
  const auto r1 = detect::EventEngine(ec).run(specs10);
  ec.num_threads = 4;
  const auto r4 = detect::EventEngine(ec).run(specs10);
  const bool deterministic = r1.signal == r4.signal && r1.idler == r4.idler;
  std::printf("thread-count determinism (1 vs 4 threads): %s\n",
              deterministic ? "bitwise identical" : "MISMATCH");

  // Emission-mode rows: pulsed (double-pulse train) and piecewise-rate
  // (drifting source) engine runs, each with its own determinism check.
  std::printf("\n%10s %6s %12s %14s\n", "emission", "n", "engine[ms]", "deterministic");
  std::vector<ModeRow> mode_rows;
  bool modes_deterministic = true;
  for (const int n : channel_counts) {
    mode_rows.push_back(bench_mode("pulsed", make_pulsed_specs(n), duration_s));
    mode_rows.push_back(
        bench_mode("piecewise", make_piecewise_specs(n, duration_s), duration_s));
  }
  for (const ModeRow& r : mode_rows) {
    modes_deterministic = modes_deterministic && r.deterministic;
    std::printf("%10s %6d %12.1f %14s\n", r.emission, r.n, r.engine_ms,
                r.deterministic ? "yes" : "NO");
  }

  // Analysis thread-scaling rows: sharded merge-sweep at 1/2/4 workers over
  // the largest CW table of the sweep.
  const int n_analysis = channel_counts.back();
  detect::EngineConfig analysis_ec;
  analysis_ec.duration_s = duration_s;
  analysis_ec.seed = kSeed;
  const auto analysis_events =
      detect::EventEngine(analysis_ec).run(make_specs(n_analysis));
  const auto analysis_rows = bench_analysis_threads(analysis_events);
  bool analysis_deterministic = true;
  std::printf("\nanalysis thread scaling (n=%d, sharded car_matrix/correlate_all)\n",
              n_analysis);
  std::printf("%8s %12s %14s %12s %14s\n", "threads", "car[ms]", "correlate[ms]",
              "speedup", "deterministic");
  for (const AnalysisRow& r : analysis_rows) {
    analysis_deterministic = analysis_deterministic && r.deterministic;
    std::printf("%8d %12.1f %14.1f %11.2fx %14s\n", r.threads, r.car_ms,
                r.correlate_ms, r.speedup_vs_1t, r.deterministic ? "yes" : "NO");
  }

  // Streaming window-size sweep: streamed generation + online CAR at
  // several window sizes over the n=10 CW workload, each row checked
  // bitwise against one batch run + batch car_matrix.
  std::size_t batch_events = 0;
  auto t0s = Clock::now();
  const auto batch_car =
      engine_car_matrix(specs10, duration_s, /*num_threads=*/0, &batch_events);
  const double batch_ms = ms_since(t0s);
  std::vector<StreamRow> stream_rows;
  bool stream_identical = true;
  std::printf("\nstreaming window sweep (n=10, batch %.1f ms)\n", batch_ms);
  std::printf("%12s %12s %17s %12s %10s\n", "window[s]", "stream[ms]", "throughput",
              "peak RSS", "identical");
  for (const double frac : {1.0 / 50.0, 1.0 / 10.0, 1.0 / 2.0}) {
    StreamRow r;
    r.window_s = duration_s * frac;
    t0s = Clock::now();
    const auto streamed = run_streamed_car(specs10, duration_s, r.window_s, &r.events);
    r.stream_ms = ms_since(t0s);
    r.events_per_sec =
        r.stream_ms > 0 ? static_cast<double>(r.events) / (r.stream_ms / 1e3) : 0;
    r.max_rss_kb = peak_rss_kb();
    r.identical = car_cells_identical(streamed, batch_car);
    stream_identical = stream_identical && r.identical;
    stream_rows.push_back(r);
    std::printf("%12.4f %12.1f %12.3g ev/s %9ld KB %10s\n", r.window_s, r.stream_ms,
                r.events_per_sec, r.max_rss_kb, r.identical ? "yes" : "NO");
  }

  std::vector<std::string> json_rows;
  json_rows.reserve(rows.size() + mode_rows.size());
  for (const Row& r : rows)
    json_rows.push_back(bench::format(
        "{\"emission\": \"cw\", \"n\": %d, \"legacy_ms\": %.3f, \"engine_ms\": %.3f, "
        "\"speedup\": %.3f, \"identical\": %s, \"events\": %zu, "
        "\"events_per_sec\": %.1f, \"max_rss_kb\": %ld}",
        r.n, r.legacy_ms, r.engine_ms, r.speedup, r.identical ? "true" : "false",
        r.events, r.events_per_sec, r.max_rss_kb));
  for (const ModeRow& r : mode_rows)
    json_rows.push_back(bench::format(
        "{\"emission\": \"%s\", \"n\": %d, \"engine_ms\": %.3f, \"deterministic\": %s}",
        r.emission, r.n, r.engine_ms, r.deterministic ? "true" : "false"));
  for (const AnalysisRow& r : analysis_rows)
    json_rows.push_back(bench::format(
        "{\"kernel\": \"analysis\", \"threads\": %d, \"n\": %d, \"car_ms\": %.3f, "
        "\"correlate_ms\": %.3f, \"speedup_vs_1t\": %.3f, \"deterministic\": %s}",
        r.threads, n_analysis, r.car_ms, r.correlate_ms, r.speedup_vs_1t,
        r.deterministic ? "true" : "false"));
  json_rows.push_back(bench::format(
      "{\"kernel\": \"streaming_rss\", \"n\": %d, \"window_s\": %.6f, "
      "\"duration_s\": %.3f, \"base_ms\": %.3f, \"ten_x_ms\": %.3f, "
      "\"rss_base_kb\": %ld, \"rss_10x_kb\": %ld, \"bounded_rss\": %s}",
      probe_n, probe_window_s, probe_duration_s, probe_base_ms, probe_10x_ms,
      rss_base_kb, rss_10x_kb, bounded_rss ? "true" : "false"));
  for (const StreamRow& r : stream_rows)
    json_rows.push_back(bench::format(
        "{\"kernel\": \"streaming\", \"n\": 10, \"window_s\": %.6f, "
        "\"stream_ms\": %.3f, \"batch_ms\": %.3f, \"events\": %zu, "
        "\"events_per_sec\": %.1f, \"max_rss_kb\": %ld, \"identical\": %s}",
        r.window_s, r.stream_ms, batch_ms, r.events, r.events_per_sec, r.max_rss_kb,
        r.identical ? "true" : "false"));
  bench::write_json(json_path, "event_engine", smoke, json_rows,
                    {bench::format("\"duration_s\": %.3f", duration_s),
                     bench::format("\"speedup_n10\": %.3f", speedup_n10),
                     bench::format("\"deterministic\": %s",
                                   deterministic ? "true" : "false"),
                     bench::format("\"max_rss_kb\": %ld", peak_rss_kb()),
                     "\"obs\": " + obs_report.json_object()});

  // Exit code gates on correctness only (cell identity + thread-count
  // determinism in every emission mode and in the sharded analysis sweep +
  // streaming parity and bounded RSS); the speedup target is reported but
  // not allowed to fail CI on a noisy shared runner.
  const bool correct = all_identical && deterministic && modes_deterministic &&
                       analysis_deterministic && stream_identical && bounded_rss;
  const bool ok = correct && speedup_n10 >= 5.0;
  bench::verdict(ok, "n=10 speedup " + std::to_string(speedup_n10) + "x, cells " +
                         (all_identical ? "identical" : "DIFFER") + ", " +
                         (deterministic && modes_deterministic && analysis_deterministic
                              ? "thread-invariant (generation + analysis)"
                              : "NOT thread-invariant") +
                         ", streaming " +
                         (stream_identical ? "bitwise-parity" : "PARITY BROKEN") +
                         ", RSS " + (bounded_rss ? "bounded" : "UNBOUNDED"));
  return correct ? 0 : 1;
}
