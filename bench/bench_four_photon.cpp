// E8 (Sec. V): four-photon quantum interference with raw visibility 89%
// (no background correction).

#include <cstdio>

#include "bench_util.hpp"
#include "qfc/core/comb_source.hpp"

int main() {
  using namespace qfc;
  bench::header("E8  bench_four_photon",
                "four-photon quantum interference, visibility 89% without "
                "background correction");

  auto comb = core::QuantumFrequencyComb::for_configuration(
      core::PumpConfiguration::DoublePulseFourMode);
  core::FourPhotonConfig cfg;
  cfg.tomo_shots_per_setting = 60;  // tomography reported by E9; keep light here
  auto exp = comb.four_photon(cfg);
  const auto r = exp.run();

  std::printf("four-fold fringe vs common analyzer phase:\n");
  std::printf("%12s %10s %12s\n", "phase (rad)", "counts", "expected");
  for (std::size_t i = 0; i < r.fringe.phase_rad.size(); ++i)
    std::printf("%12.3f %10.0f %12.1f\n", r.fringe.phase_rad[i], r.fringe.counts[i],
                r.fringe.expected[i]);

  std::printf("\nextrema visibility (expected curve): %.3f\n", r.fringe.visibility);
  std::printf("analytic model visibility:           %.3f (paper: 0.89)\n",
              r.analytic_visibility);

  const bool ok = r.analytic_visibility > 0.84 && r.analytic_visibility < 0.94 &&
                  r.fringe.visibility > 0.80;
  bench::verdict(ok, "four-photon raw visibility ≈ 89% with the paper's pair "
                     "visibility and four-fold accidental level");
  return ok ? 0 : 1;
}
