// Microbenchmarks of the numerical kernels that dominate the reproduction
// runtime: Hermitian eigendecomposition, SVD / Schmidt decomposition,
// Monte-Carlo stream generation, coincidence correlation, and one MLE
// tomography cycle. Emits the same machine-readable JSON envelope as
// bench_event_engine / bench_linalg_backends ({bench, mode, rows}) so the
// perf trajectory accumulates run over run.
//
// Usage: bench_kernels [--smoke] [--json PATH]
//   --smoke   fewer repetitions (CI)
//   --json    write machine-readable results (default BENCH_kernels.json)

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "qfc/detect/coincidence.hpp"
#include "qfc/detect/event_stream.hpp"
#include "qfc/linalg/hermitian_eig.hpp"
#include "qfc/linalg/svd.hpp"
#include "qfc/quantum/bell.hpp"
#include "qfc/rng/xoshiro.hpp"
#include "qfc/sfwm/jsa.hpp"
#include "qfc/tomo/tomography.hpp"

namespace {

using namespace qfc;
using Clock = std::chrono::steady_clock;

linalg::CMat random_hermitian(std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 g(seed);
  linalg::CMat a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      a(i, j) = linalg::cplx(g.uniform(-1, 1), g.uniform(-1, 1));
  return linalg::hermitian_part(a);
}

struct Row {
  std::string name;
  std::size_t n = 0;
  int reps = 0;
  double ms_per_rep = 0;
};

/// Time `fn` over `reps` repetitions, returning mean ms per repetition.
template <class F>
Row time_kernel(const std::string& name, std::size_t n, int reps, F&& fn) {
  const auto t0 = Clock::now();
  for (int r = 0; r < reps; ++r) fn();
  const double total_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  return Row{name, n, reps, total_ms / reps};
}

}  // namespace

int main(int argc, char** argv) {
  const auto [smoke, json_path] = bench::parse_flags(argc, argv, "BENCH_kernels.json");

  bench::header("P0  bench_kernels",
                "microbenchmark trajectory of the dominant numerical kernels "
                "(eig, Schmidt/SVD, stream generation, correlation, MLE)");

  const int rep_scale = smoke ? 1 : 4;
  std::vector<Row> rows;

  for (const std::size_t n : {8u, 16u, 32u}) {
    const auto a = random_hermitian(n, 42);
    rows.push_back(time_kernel("hermitian_eig", n, 20 * rep_scale, [&] {
      auto e = linalg::hermitian_eig(a);
      (void)e;
    }));
  }

  for (const std::size_t n : {16u, 32u, 64u}) {
    sfwm::JsaParams p;
    p.pump_bandwidth_hz = 800e6;
    p.ring_linewidth_s_hz = 800e6;
    p.ring_linewidth_i_hz = 800e6;
    p.grid_points = n;
    const auto jsa = sfwm::sample_jsa(p);
    rows.push_back(time_kernel("schmidt_decompose", n, 10 * rep_scale, [&] {
      auto r = sfwm::schmidt_decompose(jsa);
      (void)r;
    }));
  }

  {
    rng::Xoshiro256 g(7);
    detect::PairStreamParams p;
    p.pair_rate_hz = 100e3;
    p.linewidth_hz = 100e6;
    p.duration_s = 1.0;
    rows.push_back(time_kernel("pair_stream_generation", 100000, 5 * rep_scale, [&] {
      auto s = detect::generate_pair_arrivals(p, g);
      (void)s;
    }));

    const auto s = detect::generate_pair_arrivals(p, g);
    rows.push_back(time_kernel("coincidence_correlation", 100000, 5 * rep_scale, [&] {
      auto h = detect::correlate(s.a, s.b, 1e-9, 50e-9);
      (void)h;
    }));
  }

  {
    rng::Xoshiro256 g(9);
    const auto rho = quantum::werner_phi(0.83);
    rows.push_back(time_kernel("tomo_simulate_counts", 4, 10 * rep_scale, [&] {
      auto data = tomo::simulate_counts(rho, 500.0, {}, g);
      (void)data;
    }));

    rng::Xoshiro256 g2(10);
    const auto data = tomo::simulate_counts(rho, 200.0, {}, g2);
    rows.push_back(time_kernel("tomo_mle", 4, 2 * rep_scale, [&] {
      auto mle = tomo::maximum_likelihood(data);
      (void)mle;
    }));
  }

  std::printf("%-26s %8s %6s %12s\n", "kernel", "n", "reps", "ms/rep");
  for (const auto& r : rows)
    std::printf("%-26s %8zu %6d %12.3f\n", r.name.c_str(), r.n, r.reps, r.ms_per_rep);

  std::vector<std::string> json_rows;
  json_rows.reserve(rows.size());
  for (const Row& r : rows)
    json_rows.push_back(
        bench::format("{\"kernel\": \"%s\", \"n\": %zu, \"reps\": %d, \"ms_per_rep\": %.3f}",
                      r.name.c_str(), r.n, r.reps, r.ms_per_rep));
  bench::write_json(json_path, "kernels", smoke, json_rows);

  bench::verdict(true, "kernel timings recorded (" + std::to_string(rows.size()) + " rows)");
  return 0;
}
