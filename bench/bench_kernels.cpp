// EK: google-benchmark microbenchmarks of the numerical kernels that
// dominate the reproduction runtime: Hermitian eigendecomposition, SVD /
// Schmidt decomposition, Monte-Carlo stream generation, coincidence
// correlation, and one MLE tomography iteration cycle.

#include <benchmark/benchmark.h>

#include "qfc/detect/coincidence.hpp"
#include "qfc/detect/event_stream.hpp"
#include "qfc/linalg/hermitian_eig.hpp"
#include "qfc/linalg/svd.hpp"
#include "qfc/quantum/bell.hpp"
#include "qfc/sfwm/jsa.hpp"
#include "qfc/tomo/tomography.hpp"

namespace {

using namespace qfc;

linalg::CMat random_hermitian(std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 g(seed);
  linalg::CMat a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      a(i, j) = linalg::cplx(g.uniform(-1, 1), g.uniform(-1, 1));
  return linalg::hermitian_part(a);
}

void BM_HermitianEig(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_hermitian(n, 42);
  for (auto _ : state) {
    auto e = linalg::hermitian_eig(a);
    benchmark::DoNotOptimize(e.values.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HermitianEig)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Complexity();

void BM_SchmidtDecomposition(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sfwm::JsaParams p;
  p.pump_bandwidth_hz = 800e6;
  p.ring_linewidth_s_hz = 800e6;
  p.ring_linewidth_i_hz = 800e6;
  p.grid_points = n;
  const auto jsa = sfwm::sample_jsa(p);
  for (auto _ : state) {
    auto r = sfwm::schmidt_decompose(jsa);
    benchmark::DoNotOptimize(r.purity);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SchmidtDecomposition)->Arg(16)->Arg(32)->Arg(64)->Complexity();

void BM_PairStreamGeneration(benchmark::State& state) {
  rng::Xoshiro256 g(7);
  detect::PairStreamParams p;
  p.pair_rate_hz = static_cast<double>(state.range(0));
  p.linewidth_hz = 100e6;
  p.duration_s = 1.0;
  for (auto _ : state) {
    auto s = detect::generate_pair_arrivals(p, g);
    benchmark::DoNotOptimize(s.a.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PairStreamGeneration)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_CoincidenceCorrelation(benchmark::State& state) {
  rng::Xoshiro256 g(8);
  detect::PairStreamParams p;
  p.pair_rate_hz = static_cast<double>(state.range(0));
  p.linewidth_hz = 100e6;
  p.duration_s = 1.0;
  const auto s = detect::generate_pair_arrivals(p, g);
  for (auto _ : state) {
    auto h = detect::correlate(s.a, s.b, 1e-9, 50e-9);
    benchmark::DoNotOptimize(h.counts.data());
  }
}
BENCHMARK(BM_CoincidenceCorrelation)->Arg(10000)->Arg(100000);

void BM_TomographySimulate2Q(benchmark::State& state) {
  rng::Xoshiro256 g(9);
  const auto rho = quantum::werner_phi(0.83);
  for (auto _ : state) {
    auto data = tomo::simulate_counts(rho, 500.0, {}, g);
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_TomographySimulate2Q);

void BM_TomographyMle(benchmark::State& state) {
  rng::Xoshiro256 g(10);
  const auto n_qubits = state.range(0);
  const auto pair = quantum::werner_phi(0.83);
  const auto rho = n_qubits == 2 ? pair : pair.tensor(pair);
  const auto data = tomo::simulate_counts(rho, 200.0, {}, g);
  for (auto _ : state) {
    auto mle = tomo::maximum_likelihood(data);
    benchmark::DoNotOptimize(mle.iterations);
  }
}
BENCHMARK(BM_TomographyMle)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
