// E5 (Sec. III): parametric output power grows quadratically with pump
// power until the OPO threshold at 14 mW, then linearly.

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "qfc/core/comb_source.hpp"

int main() {
  using namespace qfc;
  bench::header("E5  bench_opo_threshold",
                "output power quadratic below the OPO threshold at 14 mW, linear "
                "above");

  auto comb = core::QuantumFrequencyComb::for_configuration(
      core::PumpConfiguration::CrossPolarized);
  auto exp = comb.type2({});
  const double pth = exp.opo_threshold_w();
  std::printf("model OPO threshold: %.1f mW (paper: 14 mW)\n\n", pth * 1e3);

  std::printf("%12s %18s %12s\n", "pump (mW)", "output", "regime");
  const auto curve = exp.run_opo_curve(30e-3, 30);
  for (const auto& p : curve) {
    const char* unit;
    double val;
    if (p.output_w >= 1e-3) {
      unit = "mW";
      val = p.output_w * 1e3;
    } else if (p.output_w >= 1e-6) {
      unit = "uW";
      val = p.output_w * 1e6;
    } else {
      unit = "pW";
      val = p.output_w * 1e12;
    }
    std::printf("%12.1f %14.3f %s %12s\n", p.pump_w * 1e3, val, unit,
                p.oscillating ? "oscillating" : "spontaneous");
  }

  // Verify the log-log slope: ~2 below threshold, ~1 above.
  const sfwm::OpoModel opo(comb.device());
  const double slope_below =
      std::log(opo.output_power_w(0.4 * pth) / opo.output_power_w(0.2 * pth)) /
      std::log(2.0);
  const double slope_above =
      std::log((opo.output_power_w(4 * pth) - opo.output_power_w(2 * pth)) /
               (opo.output_power_w(2.5 * pth) - opo.output_power_w(2 * pth))) /
      std::log(4.0);
  std::printf("\nlog-log slope below threshold: %.2f (expect 2)\n", slope_below);
  std::printf("incremental linearity above threshold: %.2f (expect 1)\n", slope_above);

  const bool ok = std::abs(pth - 14e-3) < 6e-3 && std::abs(slope_below - 2.0) < 0.05 &&
                  std::abs(slope_above - 1.0) < 0.05;
  bench::verdict(ok, "threshold near 14 mW with quadratic -> linear crossover");
  return ok ? 0 : 1;
}
