// E11 (Sec. I-II): the quantum comb covers the full S, C and L telecom
// bands with photon frequencies centered at standard telecommunication
// channels spaced by 200 GHz.

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "qfc/photonics/comb_grid.hpp"
#include "qfc/photonics/constants.hpp"
#include "qfc/photonics/device_presets.hpp"

int main() {
  using namespace qfc::photonics;
  bench::header("E11 bench_comb_coverage",
                "broad frequency comb covering the full S, C and L bands at "
                "standard 200 GHz telecom channel spacing");

  const auto ring = heralded_source_device();
  const double pump = pump_resonance_hz(ring);
  const double fsr = ring.fsr_hz(pump, Polarization::TE);
  std::printf("pump resonance: %.3f THz (%.1f nm), FSR %.1f GHz\n\n", pump / 1e12,
              wavelength_from_frequency(pump) * 1e9, fsr / 1e9);

  int in_s = 0, in_c = 0, in_l = 0, outside = 0;
  double max_itu_misalignment = 0;
  std::printf("%6s %12s %12s %6s %10s %18s\n", "k", "nu (THz)", "lambda (nm)", "band",
              "ITU ch", "grid offset (GHz)");
  for (int k = -16; k <= 16; ++k) {
    if (k == 0) continue;
    const double nu = ring.nearest_resonance_hz(pump + k * fsr, Polarization::TE);
    const TelecomBand band = classify_band(nu);
    switch (band) {
      case TelecomBand::S: ++in_s; break;
      case TelecomBand::C: ++in_c; break;
      case TelecomBand::L: ++in_l; break;
      default: ++outside; break;
    }
    // Alignment to the ideal 200 GHz grid anchored at the pump.
    const double ideal = pump + k * 200e9;
    const double offset = (nu - ideal) / 1e9;
    max_itu_misalignment = std::max(max_itu_misalignment, std::abs(offset));
    if (std::abs(k) <= 5 || std::abs(k) >= 15)
      std::printf("%6d %12.3f %12.2f %6s %10d %18.2f\n", k, nu / 1e12,
                  wavelength_from_frequency(nu) * 1e9, band_name(band),
                  CombGrid::itu_channel_number(nu), offset);
  }
  std::printf("  ... (|k| in 6..12 omitted)\n\n");
  std::printf("channels: S band %d, C band %d, L band %d, outside %d\n", in_s, in_c,
              in_l, outside);
  std::printf("max deviation from the rigid 200 GHz grid: %.2f GHz "
              "(ring dispersion)\n", max_itu_misalignment);

  const bool ok = in_s > 0 && in_c > 0 && in_l > 0 && outside == 0 &&
                  max_itu_misalignment < 20.0;
  bench::verdict(ok, "32 channels across S+C+L, all on the 200 GHz grid within "
                     "dispersion tolerance");
  return ok ? 0 : 1;
}
