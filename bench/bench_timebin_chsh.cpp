// E7 (Sec. IV): two-photon time-bin quantum interference with raw
// visibility 83% and CHSH violation on all 5 symmetric channel pairs.
// Ablation: visibility vs multi-pair mean μ (pump power).

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "qfc/core/comb_source.hpp"
#include "qfc/timebin/arrival_histogram.hpp"

int main() {
  using namespace qfc;
  bench::header("E7  bench_timebin_chsh",
                "raw two-photon visibility 83% (no background correction); CHSH "
                "S > 2 on all 5 channel pairs symmetric to the pump");

  auto comb =
      core::QuantumFrequencyComb::for_configuration(core::PumpConfiguration::DoublePulse);
  auto exp = comb.timebin_default();

  std::printf("%8s %10s %12s %12s %14s %12s\n", "channel", "mu", "V (fit)",
              "V (model)", "CHSH S", "sigma > 2");
  bool all_violate = true;
  double vis_sum = 0;
  const auto results = exp.run_all_channels();
  for (const auto& r : results) {
    std::printf("%8d %10.4f %9.3f±%.3f %12.3f %9.3f±%.3f %10.1f\n", r.k,
                r.mu_per_double_pulse, r.fringe_fit.visibility,
                r.fringe_fit.visibility_err, r.predicted_visibility, r.chsh.s,
                r.chsh.s_err, r.chsh.sigmas_above_2());
    all_violate &= r.chsh.violates_classical();
    vis_sum += r.fringe_fit.visibility;
  }
  const double vis_mean = vis_sum / static_cast<double>(results.size());
  std::printf("mean raw visibility: %.3f (paper: 0.83); S_ideal = 2√2·V = %.2f\n",
              vis_mean, 2 * std::sqrt(2.0) * vis_mean);

  // The post-selection structure (Sec. IV "post-select the relevant photon
  // events"): arrival-time-difference histogram with interference confined
  // to the central slot.
  std::printf("\narrival-time histogram (channel 1, Δt in units of the bin "
              "separation):\n");
  std::printf("%16s %8s %8s %8s %8s %8s %14s\n", "analyzer phases", "-2", "-1", "0",
              "+1", "+2", "center/side");
  rng::Xoshiro256 hg(1176);
  const auto rho1 = timebin::noisy_pair_state(exp.noise_model(1));
  struct Setting {
    const char* label;
    double a, b;
  } settings[] = {{"fringe max", 0.0, 0.0},
                  {"quadrature", 0.0, 1.5707963},
                  {"fringe min", 0.0, 3.14159265}};
  for (const auto& s : settings) {
    const auto h = timebin::simulate_arrival_histogram(rho1, s.a, s.b, 300000, hg);
    std::printf("%16s %8llu %8llu %8llu %8llu %8llu %14.2f\n", s.label,
                static_cast<unsigned long long>(h.counts[0]),
                static_cast<unsigned long long>(h.counts[1]),
                static_cast<unsigned long long>(h.counts[2]),
                static_cast<unsigned long long>(h.counts[3]),
                static_cast<unsigned long long>(h.counts[4]),
                h.central_to_side_ratio());
  }

  // Ablation: interferometer imbalance mismatch (failure injection).
  std::printf("\nablation: visibility penalty vs analyzer-imbalance mismatch\n");
  const double tau_c = 1.0 / (photonics::pi *
                              comb.device().linewidth_hz(
                                  exp.config().pump.frequency_hz,
                                  photonics::Polarization::TE));
  std::printf("photon coherence time: %.0f ps\n", tau_c * 1e12);
  for (double mismatch_ps : {0.0, 50.0, 150.0, 400.0, 1000.0})
    std::printf("  mismatch %6.0f ps -> visibility factor %.3f\n", mismatch_ps,
                timebin::mismatch_visibility_penalty(mismatch_ps * 1e-12, tau_c));

  // Ablation: visibility vs μ (multi-pair contamination) at fixed noise.
  std::printf("\nablation: visibility vs mean pair number (model)\n");
  std::printf("%10s %12s %12s\n", "mu", "V", "S = 2√2·V");
  for (double mu : {0.01, 0.05, 0.1, 0.2, 0.5, 1.0}) {
    timebin::TimebinNoiseModel m;
    m.mean_pairs_per_double_pulse = mu;
    m.phase_noise_rms_rad = 0.12;
    m.accidental_fraction = 0.02;
    const double v = timebin::predicted_visibility(m);
    std::printf("%10.2f %12.3f %12.3f\n", mu, v, 2 * std::sqrt(2.0) * v);
  }
  std::printf("(CHSH violation is lost once V < 1/√2 ≈ 0.707, i.e. μ ≳ 0.17)\n");

  const bool ok = all_violate && std::abs(vis_mean - 0.83) < 0.06;
  bench::verdict(ok, "all 5 channels violate CHSH with raw visibility ≈ 83%");
  return ok ? 0 : 1;
}
