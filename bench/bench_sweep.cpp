// Perf bench for the config-driven scenario-sweep runner (qfc::sweep):
// expands an analytic-heavy multi-experiment sweep config and runs it at
// 1, 2, and 4 sweep workers. Each worker row carries the bitwise `identical`
// flag (serialized report byte-equal to the 1-worker run — the merged-report
// determinism contract the qfc_sweep CLI and CI gate ride on) and a
// `speedup_vs_1t` ratio column for the CI ratio-mode gate.
//
// Usage: bench_sweep [--smoke] [--json PATH] [--help]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "qfc/io/json.hpp"
#include "qfc/obs/obs.hpp"
#include "qfc/sweep/sweep.hpp"

namespace {

using namespace qfc;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Mixed config: many cheap analytic instances (link budgets, qudit
/// measures, stability traces) to stress the fan-out bookkeeping, plus a
/// few Monte-Carlo network runs so each worker-count row carries enough
/// real work (~tens of ms) for the ratio columns to sit above timer noise.
std::string make_config(bool smoke) {
  const int distance_points = smoke ? 20 : 60;
  const double network_duration_s = smoke ? 0.05 : 0.2;
  return std::string(R"({
    "sweeps": [
      {
        "scenario": "qkd_link_budget",
        "base": { "num_channel_pairs": 4 },
        "axes": [
          { "param": "distance_km",
            "linspace": { "start": 0.0, "stop": 80.0, "count": )") +
         std::to_string(distance_points) + R"( } },
          { "param": "dark_rate_hz", "values": [200.0, 1000.0] }
        ]
      },
      {
        "scenario": "qudit_source",
        "axes": [
          { "param": "dimension", "values": [2, 3, 4, 5, 6, 7, 8, 9] }
        ]
      },
      {
        "scenario": "stability_comparison",
        "base": { "observation_days": 0.25, "sample_interval_s": 900.0 },
        "axes": [
          { "param": "seed", "values": [1, 2, 3, 4] }
        ]
      },
      {
        "scenario": "qkd_network",
        "base": { "num_users": 8, "max_distance_km": 40.0,
                  "duration_s": )" +
         std::to_string(network_duration_s) + R"(,
                  "stream_window_s": )" +
         std::to_string(network_duration_s / 2.0) + R"( },
        "axes": [
          { "param": "seed", "values": [1176, 1177, 1178, 1179] }
        ]
      }
    ]
  })";
}

}  // namespace

int main(int argc, char** argv) {
  const auto [smoke, json_path] = bench::parse_flags(argc, argv, "BENCH_sweep.json");
  const obs::RunReport obs_report;

  bench::header("P8  bench_sweep",
                "config-driven scenario sweeps fan out over the worker pool "
                "with a merged report bitwise identical at every worker count");

  const auto plan =
      sweep::expand_sweep_config(io::Json::parse(make_config(smoke)));
  std::vector<std::string> distinct;
  for (const auto& instance : plan.instances)
    if (std::find(distinct.begin(), distinct.end(), instance.scenario) == distinct.end())
      distinct.push_back(instance.scenario);
  std::printf("sweep plan: %zu scenario instances over %zu experiments\n\n",
              plan.instances.size(), distinct.size());

  std::printf("%8s %10s %8s %14s %10s\n", "workers", "run[ms]", "failed",
              "speedup_vs_1t", "identical");
  struct Row {
    int workers = 0;
    double run_ms = 0;
    std::size_t num_failed = 0;
    double speedup_vs_1t = 0;
    bool identical = false;
  };
  std::vector<Row> rows;
  std::string bytes_1t;
  bool all_identical = true;
  bool any_failed = false;
  for (const int workers : {1, 2, 4}) {
    const auto t0 = Clock::now();
    const auto report = sweep::run_sweep(plan, workers);
    Row row;
    row.workers = workers;
    row.run_ms = ms_since(t0);
    row.num_failed = report.num_failed;
    const std::string bytes = report.json.dump(2);
    if (workers == 1) bytes_1t = bytes;
    row.identical = bytes == bytes_1t;
    row.speedup_vs_1t = row.run_ms > 0 ? rows.empty()
                                             ? 1.0
                                             : rows.front().run_ms / row.run_ms
                                       : 0.0;
    all_identical = all_identical && row.identical;
    any_failed = any_failed || row.num_failed != 0;
    rows.push_back(row);
    std::printf("%8d %10.1f %8zu %14.2f %10s\n", row.workers, row.run_ms,
                row.num_failed, row.speedup_vs_1t, row.identical ? "yes" : "NO");
  }

  std::vector<std::string> json_rows;
  json_rows.reserve(rows.size());
  for (const Row& r : rows)
    json_rows.push_back(bench::format(
        "{\"kernel\": \"sweep\", \"n\": %d, \"instances\": %zu, "
        "\"run_ms\": %.3f, \"num_failed\": %zu, \"speedup_vs_1t\": %.3f, "
        "\"identical\": %s}",
        r.workers, plan.instances.size(), r.run_ms, r.num_failed,
        r.speedup_vs_1t, r.identical ? "true" : "false"));
  bench::write_json(json_path, "sweep", smoke, json_rows,
                    {bench::format("\"instances\": %zu", plan.instances.size()),
                     bench::format("\"deterministic\": %s",
                                   all_identical ? "true" : "false"),
                     "\"obs\": " + obs_report.json_object()});

  const bool ok = all_identical && !any_failed;
  bench::verdict(
      ok, std::to_string(plan.instances.size()) +
              " scenario instances: merged report " +
              (all_identical ? "bitwise identical at 1/2/4 workers"
                             : "DIVERGED across worker counts") +
              (any_failed ? ", with scenario failures" : ", no failures"));
  return ok ? 0 : 1;
}
