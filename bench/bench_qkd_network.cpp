// Perf bench for the many-user QKD network façade (qfc::core::QkdNetwork):
// user-count scaling rows for a multi-distance network simulated from one
// shared streaming engine run, each row carrying a bitwise determinism
// flag (full report at 1 vs 4 analysis threads), plus the bounded-memory
// probe the ISSUE gates in CI — a 256-user network's peak RSS must stay
// flat across a 10x duration increase (bounded_rss), because the windowed
// streamer discards consumed events as the online CAR accumulator
// resolves them.
//
// The probe runs FIRST: getrusage's ru_maxrss is monotonic, so the
// 256-user streamed runs must set the process RSS peak before the scaling
// sweep touches anything else.
//
// Usage: bench_qkd_network [--smoke] [--json PATH] [--help]

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "bench_util.hpp"
#include "qfc/core/comb_source.hpp"
#include "qfc/core/qkd_network.hpp"
#include "qfc/obs/obs.hpp"

namespace {

using namespace qfc;
using Clock = std::chrono::steady_clock;

long peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
    return ru.ru_maxrss / 1024;  // macOS reports bytes
#else
    return ru.ru_maxrss;
#endif
  }
#endif
  return 0;
}

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// A comb wide enough for the many-user story: 64 symmetric channel pairs
/// (128 comb lines), so 256 users land 4-deep per pair under round-robin
/// assignment. High-k pairs carry the phase-matching-decayed rates the
/// source model assigns them.
core::TimebinExperiment make_wide_experiment() {
  const auto comb = core::QuantumFrequencyComb::for_configuration(
      core::PumpConfiguration::DoublePulse);
  core::TimebinConfig cfg;
  cfg.pump = core::TimebinConfig::make_default_pump(comb.device());
  cfg.num_channel_pairs = 64;
  return comb.timebin(cfg);
}

core::QkdNetworkConfig make_network(std::size_t users, double window_s) {
  auto cfg = core::QkdNetworkConfig::uniform(users, /*max_distance_km=*/100.0);
  cfg.stream_window_s = window_s;
  for (auto& user : cfg.users) user.crosstalk_leakage = 0.01;
  return cfg;
}

bool reports_identical(const core::QkdNetworkReport& a,
                       const core::QkdNetworkReport& b) {
  if (a.users.size() != b.users.size()) return false;
  for (std::size_t u = 0; u < a.users.size(); ++u) {
    if (a.users[u].car.coincidences != b.users[u].car.coincidences) return false;
    if (a.users[u].car.accidentals != b.users[u].car.accidentals) return false;
    if (a.users[u].qber != b.users[u].qber) return false;
    if (a.users[u].secret_key_rate_bps != b.users[u].secret_key_rate_bps)
      return false;
  }
  return a.total_key_rate_bps == b.total_key_rate_bps &&
         a.users_with_key == b.users_with_key;
}

struct NetworkRow {
  std::size_t users = 0;
  double run_ms = 0;
  std::size_t windows = 0;
  std::size_t users_with_key = 0;
  double total_key_rate_bps = 0;
  double worst_qber = 0;
  bool deterministic = false;
};

}  // namespace

int main(int argc, char** argv) {
  const auto [smoke, json_path] =
      bench::parse_flags(argc, argv, "BENCH_qkd_network.json");
  const obs::RunReport obs_report;

  bench::header("P7  bench_qkd_network",
                "hundreds of users keyed from one comb in a single shared "
                "streaming engine pass: flat peak RSS across a 10x duration "
                "increase at 256 users, per-user reports bitwise invariant "
                "across analysis thread counts");

  const auto exp = make_wide_experiment();
  const double duration_s = smoke ? 0.01 : 0.05;
  const double window_s = duration_s / 10.0;

  // Bounded-memory probe at 256 users, multi-distance (0..100 km spread):
  // the duration-D run sets the RSS peak; the 10x-D run with the same
  // stream window must not move it by more than 10%.
  const core::QkdNetwork probe(exp, make_network(256, window_s));
  auto t0 = Clock::now();
  const auto probe_base = probe.run(duration_s);
  const double probe_base_ms = ms_since(t0);
  const long rss_base_kb = peak_rss_kb();
  t0 = Clock::now();
  const auto probe_10x = probe.run(10.0 * duration_s);
  const double probe_10x_ms = ms_since(t0);
  const long rss_10x_kb = peak_rss_kb();
  const bool bounded_rss =
      rss_base_kb > 0 && rss_10x_kb <= rss_base_kb + rss_base_kb / 10;
  std::printf(
      "bounded-memory probe (256 users, window %.4g s): %.2f s -> %ld KB "
      "(%zu windows), %.2f s -> %ld KB (%zu windows): %s\n",
      window_s, duration_s, rss_base_kb, probe_base.stream_windows,
      10.0 * duration_s, rss_10x_kb, probe_10x.stream_windows,
      bounded_rss ? "flat (bounded)" : "GREW > 10%");

  // User-count scaling: one shared run per row, timed at the default
  // analysis setting, then re-run at 1 and 4 analysis threads for the
  // bitwise determinism flag the CI gate watches.
  std::printf("\nduration per run: %.3f s, stream window %.4g s\n", duration_s,
              window_s);
  std::printf("%8s %10s %9s %8s %16s %11s %14s\n", "users", "run[ms]", "windows",
              "w/ key", "key rate[bit/s]", "worst QBER", "deterministic");
  std::vector<NetworkRow> rows;
  bool all_deterministic = true;
  for (const std::size_t users : {16ul, 64ul, 256ul}) {
    auto cfg = make_network(users, window_s);
    const core::QkdNetwork net(exp, cfg);
    t0 = Clock::now();
    const auto report = net.run(duration_s);
    const double run_ms = ms_since(t0);

    cfg.analysis_threads = 1;
    const auto r1 = core::QkdNetwork(exp, cfg).run(duration_s);
    cfg.analysis_threads = 4;
    const auto r4 = core::QkdNetwork(exp, cfg).run(duration_s);

    NetworkRow row;
    row.users = users;
    row.run_ms = run_ms;
    row.windows = report.stream_windows;
    row.users_with_key = report.users_with_key;
    row.total_key_rate_bps = report.total_key_rate_bps;
    row.worst_qber = report.worst_qber;
    row.deterministic =
        reports_identical(r1, r4) && reports_identical(r1, report);
    all_deterministic = all_deterministic && row.deterministic;
    rows.push_back(row);
    std::printf("%8zu %10.1f %9zu %8zu %16.1f %11.3f %14s\n", row.users,
                row.run_ms, row.windows, row.users_with_key,
                row.total_key_rate_bps, row.worst_qber,
                row.deterministic ? "yes" : "NO");
  }

  std::vector<std::string> json_rows;
  json_rows.reserve(rows.size() + 1);
  json_rows.push_back(bench::format(
      "{\"kernel\": \"network_rss\", \"n\": 256, \"window_s\": %.6f, "
      "\"duration_s\": %.3f, \"base_ms\": %.3f, \"ten_x_ms\": %.3f, "
      "\"rss_base_kb\": %ld, \"rss_10x_kb\": %ld, \"bounded_rss\": %s}",
      window_s, duration_s, probe_base_ms, probe_10x_ms, rss_base_kb,
      rss_10x_kb, bounded_rss ? "true" : "false"));
  for (const NetworkRow& r : rows)
    json_rows.push_back(bench::format(
        "{\"kernel\": \"network\", \"n\": %zu, \"run_ms\": %.3f, "
        "\"windows\": %zu, \"users_with_key\": %zu, "
        "\"total_key_rate_bps\": %.3f, \"worst_qber\": %.6f, "
        "\"deterministic\": %s}",
        r.users, r.run_ms, r.windows, r.users_with_key, r.total_key_rate_bps,
        r.worst_qber, r.deterministic ? "true" : "false"));
  bench::write_json(json_path, "qkd_network", smoke, json_rows,
                    {bench::format("\"duration_s\": %.3f", duration_s),
                     bench::format("\"bounded_rss\": %s",
                                   bounded_rss ? "true" : "false"),
                     bench::format("\"deterministic\": %s",
                                   all_deterministic ? "true" : "false"),
                     bench::format("\"max_rss_kb\": %ld", peak_rss_kb()),
                     "\"obs\": " + obs_report.json_object()});

  const bool ok = bounded_rss && all_deterministic &&
                  rows.back().users_with_key > 0;
  bench::verdict(
      ok, std::string("256-user shared streaming run: RSS ") +
              (bounded_rss ? "bounded" : "UNBOUNDED") + " across 10x duration, "
              "reports " +
              (all_deterministic ? "bitwise thread-invariant"
                                 : "NOT thread-invariant") +
              ", " + std::to_string(rows.back().users_with_key) +
              "/256 users with positive key");
  return ok ? 0 : 1;
}
