// E12 (application, Sec. I): entanglement-based QKD over the multiplexed
// comb channels — key rate vs distance, the payoff of "frequency
// multiplexing to enable high dimensional multi-user operation".

#include <cstdio>

#include "bench_util.hpp"
#include "qfc/core/comb_source.hpp"
#include "qfc/core/qkd.hpp"

int main() {
  using namespace qfc;
  bench::header("E12 bench_qkd_distance",
                "application: BBM92 time-bin QKD on the multiplexed comb; "
                "positive key on all channels, aggregate rate ~ N_channels");

  auto comb =
      core::QuantumFrequencyComb::for_configuration(core::PumpConfiguration::DoublePulse);
  auto exp = comb.timebin_default();
  core::MultiplexedQkdLink link(exp);

  std::printf("%14s %14s %10s %16s %18s\n", "distance (km)", "V (ch 1)", "QBER",
              "key/ch (bit/s)", "aggregate (bit/s)");
  bool monotone = true;
  double prev = 1e18;
  for (double km : {0.0, 10.0, 25.0, 50.0, 75.0, 100.0, 150.0, 200.0}) {
    const auto ch = link.channel_performance(1, km);
    const double agg = link.aggregate_key_rate_bps(km);
    std::printf("%14.0f %14.3f %10.3f %16.1f %18.1f\n", km, ch.visibility, ch.qber,
                ch.key_rate_bps, agg);
    if (agg > prev * 1.0001) monotone = false;
    prev = agg;
  }

  const double dmax = link.max_distance_km(1);
  std::printf("\nmax distance with positive key (channel 1): %.0f km\n", dmax);

  const auto at10 = link.all_channels(10.0);
  int positive = 0;
  for (const auto& ch : at10) positive += ch.key_positive ? 1 : 0;
  std::printf("channels with positive key at 10 km: %d / %zu\n", positive, at10.size());
  std::printf("aggregate multiplexing gain at 10 km: %.2fx single channel\n",
              link.aggregate_key_rate_bps(10.0) / at10.front().key_rate_bps);

  const bool ok = monotone && positive == static_cast<int>(at10.size()) && dmax > 20;
  bench::verdict(ok, "key rate decays monotonically with distance; all multiplexed "
                     "channels distill key at metro distances");
  return ok ? 0 : 1;
}
