// E1 (Sec. II): coincidence peaks on all symmetric signal/idler channel
// pairs, no coincidences on off-diagonal combinations of the frequency
// matrix.

#include <cstdio>

#include "bench_util.hpp"
#include "qfc/core/comb_source.hpp"

int main() {
  using namespace qfc;
  bench::header("E1  bench_coincidence_matrix",
                "clear coincidence peaks on all symmetric channel pairs; no "
                "coincidences between non-diagonal elements of the frequency matrix");

  auto comb = core::QuantumFrequencyComb::for_configuration(
      core::PumpConfiguration::SelfLockedCw);
  core::HeraldedConfig cfg;
  cfg.duration_s = 30.0;
  cfg.num_channel_pairs = 5;
  auto exp = comb.heralded(cfg);
  const auto cells = exp.run_coincidence_matrix();

  std::printf("CAR matrix (rows: signal channel +k, cols: idler channel -k)\n");
  std::printf("%8s", "");
  for (int i = 1; i <= cfg.num_channel_pairs; ++i) std::printf("%9s%d", "idler", i);
  std::printf("\n");

  bool diag_ok = true, offdiag_ok = true;
  for (int s = 1; s <= cfg.num_channel_pairs; ++s) {
    std::printf("signal %d", s);
    for (int i = 1; i <= cfg.num_channel_pairs; ++i) {
      const auto& cell = cells[static_cast<std::size_t>((s - 1) * cfg.num_channel_pairs +
                                                        (i - 1))];
      std::printf("%10.1f", cell.car.car);
      if (s == i && cell.car.car < 5) diag_ok = false;
      if (s != i && cell.car.car > 3) offdiag_ok = false;
    }
    std::printf("\n");
  }

  bench::verdict(diag_ok && offdiag_ok,
                 diag_ok ? (offdiag_ok ? "diagonal CAR >> 1, off-diagonal ~ 1"
                                       : "off-diagonal cells show correlations")
                         : "diagonal cells too weak");
  return (diag_ok && offdiag_ok) ? 0 : 1;
}
