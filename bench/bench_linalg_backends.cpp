// Perf bench for the linalg kernel-dispatch seam: Reference (naive
// single-threaded loops) vs Blocked (SIMD micro-kernels, cache-blocked
// GEMM, round-robin parallel Jacobi eig/SVD on the worker pool) across a
// dimension sweep, plus the kron seam and the batched small-matrix eig
// path (1000 d=16 matrices — the shape of a tomography sweep).
// Timing is best-of-N (minimum over reps) so small-n rows are stable.
// Also checks value parity (1e-10) and bitwise thread-count invariance,
// which gate the exit code; the speedup is reported but never fails CI on
// a noisy or single-core runner (scripts/check_bench.py gates ratios).
//
// Usage: bench_linalg_backends [--smoke] [--json PATH] [--help]
//   --smoke   smaller dimension sweep (CI)
//   --json    write machine-readable results (default BENCH_linalg.json;
//             gated in CI by scripts/check_bench.py — see --help)

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "qfc/linalg/backend.hpp"
#include "qfc/linalg/matrix.hpp"
#include "qfc/obs/obs.hpp"

namespace {

using namespace qfc;
using linalg::Backend;
using linalg::BackendKind;
using linalg::CMat;
using linalg::cplx;
using Clock = std::chrono::steady_clock;

CMat random_matrix(std::size_t r, std::size_t c, unsigned seed) {
  std::mt19937 g(seed);
  std::normal_distribution<double> n(0.0, 1.0);
  CMat m(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) m(i, j) = cplx(n(g), n(g));
  return m;
}

CMat random_hermitian(std::size_t n, unsigned seed) {
  return linalg::hermitian_part(random_matrix(n, n, seed));
}

/// Best-of-N timing: minimum wall time over `reps` runs of fn(). The
/// minimum is the standard noise-robust estimator for short kernels.
template <typename Fn>
double best_ms(int reps, Fn&& fn) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

int reps_for(std::size_t n) {
  if (n <= 16) return 200;
  if (n <= 32) return 40;
  if (n <= 64) return 8;
  if (n <= 128) return 3;
  return 1;
}

double max_rvec_diff(const linalg::RVec& a, const linalg::RVec& b) {
  double m = 0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

struct Row {
  const char* kernel = "";
  std::size_t n = 0;
  double reference_ms = 0;
  double blocked_ms = 0;
  double speedup = 0;
  bool match = false;
};

Row make_row(const char* kernel, std::size_t n, double ref_ms, double blk_ms,
             bool match) {
  return Row{kernel, n, ref_ms, blk_ms, blk_ms > 0 ? ref_ms / blk_ms : 0, match};
}

Row bench_eig(std::size_t n) {
  const CMat a = random_hermitian(n, 1000 + static_cast<unsigned>(n));
  const linalg::EigOptions opt;
  const int reps = reps_for(n);

  const auto er = linalg::backend(BackendKind::Reference).hermitian_eig(a, opt);
  const auto eb = linalg::backend(BackendKind::Blocked).hermitian_eig(a, opt);
  const double ref_ms = best_ms(
      reps, [&] { linalg::backend(BackendKind::Reference).hermitian_eig(a, opt); });
  const double blk_ms = best_ms(
      reps, [&] { linalg::backend(BackendKind::Blocked).hermitian_eig(a, opt); });

  const double scale = std::max(1.0, std::abs(er.values.front()));
  const bool match = max_rvec_diff(er.values, eb.values) <= 1e-10 * scale;
  return make_row("hermitian_eig", n, ref_ms, blk_ms, match);
}

Row bench_svd(std::size_t n) {
  // Mildly rectangular so the thin-SVD bookkeeping is exercised too.
  const CMat a = random_matrix(n + n / 4, n, 2000 + static_cast<unsigned>(n));
  const int reps = reps_for(n);

  const auto sr = linalg::backend(BackendKind::Reference).svd(a, 96);
  const auto sb = linalg::backend(BackendKind::Blocked).svd(a, 96);
  const double ref_ms =
      best_ms(reps, [&] { linalg::backend(BackendKind::Reference).svd(a, 96); });
  const double blk_ms =
      best_ms(reps, [&] { linalg::backend(BackendKind::Blocked).svd(a, 96); });

  const double scale = std::max(1.0, sr.sigma.front());
  const bool match = max_rvec_diff(sr.sigma, sb.sigma) <= 1e-10 * scale;
  return make_row("svd", n, ref_ms, blk_ms, match);
}

Row bench_gemm(std::size_t n) {
  const CMat a = random_matrix(n, n, 3000 + static_cast<unsigned>(n));
  const CMat b = random_matrix(n, n, 4000 + static_cast<unsigned>(n));
  CMat cr(n, n), cb(n, n);
  const int reps = reps_for(n);

  // gemm accumulates into its output, so zero it before each timed rep
  // (the memset is negligible next to the n^3 kernel).
  const auto zero = [n](CMat& c) { std::fill(c.data(), c.data() + n * n, cplx{}); };
  const double ref_ms = best_ms(reps, [&] {
    zero(cr);
    linalg::backend(BackendKind::Reference).gemm(a, b, cr);
  });
  const double blk_ms = best_ms(reps, [&] {
    zero(cb);
    linalg::backend(BackendKind::Blocked).gemm(a, b, cb);
  });

  const bool match = (cr - cb).max_abs() <= 1e-10;
  return make_row("gemm", n, ref_ms, blk_ms, match);
}

/// Tensor product through the seam: n x n (x) n x n complex.
Row bench_kron(std::size_t n) {
  const CMat a = random_matrix(n, n, 5000 + static_cast<unsigned>(n));
  const CMat b = random_matrix(n, n, 6000 + static_cast<unsigned>(n));
  CMat cr(n * n, n * n), cb(n * n, n * n);
  const int reps = reps_for(n);

  const double ref_ms =
      best_ms(reps, [&] { linalg::backend(BackendKind::Reference).kron(a, b, cr); });
  const double blk_ms =
      best_ms(reps, [&] { linalg::backend(BackendKind::Blocked).kron(a, b, cb); });

  // The kron micro-kernel is in the bitwise SIMD tier; hold it to that.
  const bool match = (cr - cb).max_abs() == 0.0;
  return make_row("kron", n, ref_ms, blk_ms, match);
}

/// Batched small-matrix eig — `count` independent d x d Hermitian matrices
/// in one call (acceptance target: 1000 d=16, the shape of a qudit
/// tomography sweep), vs the same matrices through a serial Reference loop.
Row bench_eig_batch(std::size_t d, std::size_t count) {
  std::vector<CMat> as;
  as.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    as.push_back(random_hermitian(d, 7000 + static_cast<unsigned>(i)));
  const linalg::EigOptions opt;
  const auto& ref = linalg::backend(BackendKind::Reference);
  const auto& blk = linalg::backend(BackendKind::Blocked);

  const auto eb = blk.hermitian_eig_batch(as, opt);
  bool match = eb.size() == count;
  for (std::size_t i = 0; match && i < count; ++i) {
    const auto er = ref.hermitian_eig(as[i], opt);
    const double scale = std::max(1.0, std::abs(er.values.front()));
    match = max_rvec_diff(er.values, eb[i].values) <= 1e-10 * scale;
  }

  const double ref_ms = best_ms(3, [&] {
    for (const CMat& a : as) ref.hermitian_eig(a, opt);
  });
  const double blk_ms = best_ms(3, [&] { blk.hermitian_eig_batch(as, opt); });
  return make_row("eig_batch", d, ref_ms, blk_ms, match);
}

/// Blocked results must be bitwise identical for every worker count —
/// including the batch fan-out and the pooled kron.
bool check_thread_invariance(std::size_t n) {
  const CMat h = random_hermitian(n, 77);
  const CMat r = random_matrix(n + 8, n, 78);
  std::vector<CMat> batch;
  for (unsigned i = 0; i < 8; ++i) batch.push_back(random_hermitian(16, 80 + i));
  const CMat ka = random_matrix(16, 16, 90), kb = random_matrix(16, 16, 91);
  const auto& blk = linalg::backend(BackendKind::Blocked);
  const unsigned saved_request = linalg::backend_thread_request();

  linalg::set_backend_threads(1);
  const auto eig1 = blk.hermitian_eig(h, {});
  const auto svd1 = blk.svd(r, 96);
  const auto batch1 = blk.hermitian_eig_batch(batch, {});
  CMat kron1(256, 256);
  blk.kron(ka, kb, kron1);

  bool ok = true;
  for (const unsigned threads : {2u, 4u}) {
    linalg::set_backend_threads(threads);
    const auto eig = blk.hermitian_eig(h, {});
    const auto svd = blk.svd(r, 96);
    const auto eb = blk.hermitian_eig_batch(batch, {});
    CMat kr(256, 256);
    blk.kron(ka, kb, kr);
    ok = ok && eig1.values == eig.values && eig1.vectors == eig.vectors &&
         svd1.sigma == svd.sigma && svd1.u == svd.u && svd1.v == svd.v &&
         kron1 == kr;
    for (std::size_t i = 0; ok && i < batch.size(); ++i)
      ok = batch1[i].values == eb[i].values && batch1[i].vectors == eb[i].vectors;
  }
  linalg::set_backend_threads(saved_request);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const auto [smoke, json_path] = bench::parse_flags(argc, argv, "BENCH_linalg.json");

  // Run-scoped metrics aggregate for the "obs" envelope member (kernel
  // calls, GEMM/kron flops, Jacobi sweeps/rotations — see
  // src/qfc/obs/README.md). Empty unless obs is enabled via
  // QFC_OBS_TRACE / QFC_OBS_METRICS.
  const obs::RunReport obs_report;

  bench::header("P2  bench_linalg_backends",
                "Blocked backend (SIMD micro-kernels + worker pool) at or above "
                "Reference on every kernel and dimension, eigen/singular values "
                "matching to 1e-10, bitwise thread-count invariant");

  const std::vector<std::size_t> dims =
      smoke ? std::vector<std::size_t>{8, 32, 64, 128}
            : std::vector<std::size_t>{8, 16, 32, 64, 128, 256};

  std::printf("worker threads (auto): %u,  SIMD: %s\n", linalg::backend_threads(),
              linalg::simd_enabled() ? "on" : "off");
  std::printf("%-14s %6s %14s %12s %9s %7s\n", "kernel", "n", "reference[ms]",
              "blocked[ms]", "speedup", "match");

  std::vector<Row> rows;
  double speedup_eig_n128 = 0;
  bool all_match = true;
  const auto emit = [&](const Row& row) {
    rows.push_back(row);
    all_match = all_match && row.match;
    if (std::strcmp(row.kernel, "hermitian_eig") == 0 && row.n == 128)
      speedup_eig_n128 = row.speedup;
    std::printf("%-14s %6zu %14.2f %12.2f %8.2fx %7s\n", row.kernel, row.n,
                row.reference_ms, row.blocked_ms, row.speedup,
                row.match ? "yes" : "NO");
  };

  for (const std::size_t n : dims) {
    emit(bench_eig(n));
    emit(bench_svd(n));
    emit(bench_gemm(n));
  }
  emit(bench_kron(24));
  emit(bench_eig_batch(16, 1000));

  const bool deterministic = check_thread_invariance(96);
  std::printf("thread-count determinism (1 vs 2 vs 4 workers, incl. batch/kron): %s\n",
              deterministic ? "bitwise identical" : "MISMATCH");
  const bool eig_n128_wins = speedup_eig_n128 >= 1.0;

  std::vector<std::string> json_rows;
  json_rows.reserve(rows.size());
  for (const Row& r : rows)
    json_rows.push_back(bench::format(
        "{\"kernel\": \"%s\", \"n\": %zu, \"reference_ms\": %.3f, "
        "\"blocked_ms\": %.3f, \"speedup\": %.3f, \"match\": %s}",
        r.kernel, r.n, r.reference_ms, r.blocked_ms, r.speedup,
        r.match ? "true" : "false"));
  bench::write_json(json_path, "linalg_backends", smoke, json_rows,
                    {bench::format("\"speedup_eig_n128\": %.3f", speedup_eig_n128),
                     bench::format("\"eig_n128_blocked_wins\": %s",
                                   eig_n128_wins ? "true" : "false"),
                     bench::format("\"deterministic\": %s",
                                   deterministic ? "true" : "false"),
                     "\"obs\": " + obs_report.json_object()});

  // Exit code gates on correctness only (value parity + thread-count
  // determinism); the speedup rows are gated in CI by check_bench.py's
  // ratio comparison against the committed baseline, which also pins the
  // eig_n128_blocked_wins flag.
  const bool correct = all_match && deterministic;
  const bool ok = correct && eig_n128_wins;
  bench::verdict(ok, "eig n=128 speedup " + std::to_string(speedup_eig_n128) +
                         "x, values " + (all_match ? "match" : "DIFFER") + ", " +
                         (deterministic ? "thread-invariant" : "NOT thread-invariant"));
  return correct ? 0 : 1;
}
