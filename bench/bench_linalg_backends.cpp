// Perf bench for the linalg kernel-dispatch seam: Reference (naive
// single-threaded loops) vs Blocked (cache-blocked GEMM, round-robin
// parallel Jacobi eig/SVD on the worker pool) across a dimension sweep.
// Also checks value parity (1e-10) and bitwise thread-count invariance,
// which gate the exit code; the speedup is reported but never fails CI on
// a noisy or single-core runner.
//
// Usage: bench_linalg_backends [--smoke] [--json PATH] [--help]
//   --smoke   smaller dimension sweep (CI)
//   --json    write machine-readable results (default BENCH_linalg.json;
//             gated in CI by scripts/check_bench.py — see --help)

#include <chrono>
#include <cmath>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "qfc/linalg/backend.hpp"
#include "qfc/linalg/matrix.hpp"
#include "qfc/obs/obs.hpp"

namespace {

using namespace qfc;
using linalg::Backend;
using linalg::BackendKind;
using linalg::CMat;
using linalg::cplx;
using Clock = std::chrono::steady_clock;

CMat random_matrix(std::size_t r, std::size_t c, unsigned seed) {
  std::mt19937 g(seed);
  std::normal_distribution<double> n(0.0, 1.0);
  CMat m(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) m(i, j) = cplx(n(g), n(g));
  return m;
}

CMat random_hermitian(std::size_t n, unsigned seed) {
  return linalg::hermitian_part(random_matrix(n, n, seed));
}

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

double max_rvec_diff(const linalg::RVec& a, const linalg::RVec& b) {
  double m = 0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

struct Row {
  const char* kernel = "";
  std::size_t n = 0;
  double reference_ms = 0;
  double blocked_ms = 0;
  double speedup = 0;
  bool match = false;
};

Row bench_eig(std::size_t n) {
  const CMat a = random_hermitian(n, 1000 + static_cast<unsigned>(n));
  const linalg::EigOptions opt;

  auto t0 = Clock::now();
  const auto er = linalg::backend(BackendKind::Reference).hermitian_eig(a, opt);
  const double ref_ms = ms_since(t0);

  t0 = Clock::now();
  const auto eb = linalg::backend(BackendKind::Blocked).hermitian_eig(a, opt);
  const double blk_ms = ms_since(t0);

  Row row{"hermitian_eig", n, ref_ms, blk_ms, blk_ms > 0 ? ref_ms / blk_ms : 0, false};
  const double scale = std::max(1.0, std::abs(er.values.front()));
  row.match = max_rvec_diff(er.values, eb.values) <= 1e-10 * scale;
  return row;
}

Row bench_svd(std::size_t n) {
  // Mildly rectangular so the thin-SVD bookkeeping is exercised too.
  const CMat a = random_matrix(n + n / 4, n, 2000 + static_cast<unsigned>(n));

  auto t0 = Clock::now();
  const auto sr = linalg::backend(BackendKind::Reference).svd(a, 96);
  const double ref_ms = ms_since(t0);

  t0 = Clock::now();
  const auto sb = linalg::backend(BackendKind::Blocked).svd(a, 96);
  const double blk_ms = ms_since(t0);

  Row row{"svd", n, ref_ms, blk_ms, blk_ms > 0 ? ref_ms / blk_ms : 0, false};
  const double scale = std::max(1.0, sr.sigma.front());
  row.match = max_rvec_diff(sr.sigma, sb.sigma) <= 1e-10 * scale;
  return row;
}

Row bench_gemm(std::size_t n) {
  const CMat a = random_matrix(n, n, 3000 + static_cast<unsigned>(n));
  const CMat b = random_matrix(n, n, 4000 + static_cast<unsigned>(n));
  CMat cr(n, n), cb(n, n);

  auto t0 = Clock::now();
  linalg::backend(BackendKind::Reference).gemm(a, b, cr);
  const double ref_ms = ms_since(t0);

  t0 = Clock::now();
  linalg::backend(BackendKind::Blocked).gemm(a, b, cb);
  const double blk_ms = ms_since(t0);

  Row row{"gemm", n, ref_ms, blk_ms, blk_ms > 0 ? ref_ms / blk_ms : 0, false};
  row.match = (cr - cb).max_abs() <= 1e-10;
  return row;
}

/// Blocked results must be bitwise identical for every worker count.
bool check_thread_invariance(std::size_t n) {
  const CMat h = random_hermitian(n, 77);
  const CMat r = random_matrix(n + 8, n, 78);
  const auto& blk = linalg::backend(BackendKind::Blocked);
  const unsigned saved_request = linalg::backend_thread_request();

  linalg::set_backend_threads(1);
  const auto eig1 = blk.hermitian_eig(h, {});
  const auto svd1 = blk.svd(r, 96);

  bool ok = true;
  for (const unsigned threads : {2u, 4u}) {
    linalg::set_backend_threads(threads);
    const auto eig = blk.hermitian_eig(h, {});
    const auto svd = blk.svd(r, 96);
    ok = ok && eig1.values == eig.values && eig1.vectors == eig.vectors &&
         svd1.sigma == svd.sigma && svd1.u == svd.u && svd1.v == svd.v;
  }
  linalg::set_backend_threads(saved_request);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const auto [smoke, json_path] = bench::parse_flags(argc, argv, "BENCH_linalg.json");

  // Run-scoped metrics aggregate for the "obs" envelope member (kernel
  // calls, GEMM flops, Jacobi sweeps/rotations — see src/qfc/obs/README.md).
  // Empty unless obs is enabled via QFC_OBS_TRACE / QFC_OBS_METRICS.
  const obs::RunReport obs_report;

  bench::header("P2  bench_linalg_backends",
                "Blocked backend >= 3x faster than Reference for hermitian_eig "
                "at n=128 on a multi-core host, eigen/singular values matching "
                "to 1e-10, bitwise thread-count invariant");

  const std::vector<std::size_t> dims =
      smoke ? std::vector<std::size_t>{8, 32, 64, 128}
            : std::vector<std::size_t>{8, 16, 32, 64, 128, 256};

  std::printf("worker threads (auto): %u\n", linalg::backend_threads());
  std::printf("%-14s %6s %14s %12s %9s %7s\n", "kernel", "n", "reference[ms]",
              "blocked[ms]", "speedup", "match");

  std::vector<Row> rows;
  double speedup_eig_n128 = 0;
  bool all_match = true;
  for (const std::size_t n : dims) {
    for (const auto& bench_fn : {bench_eig, bench_svd, bench_gemm}) {
      const Row row = bench_fn(n);
      rows.push_back(row);
      all_match = all_match && row.match;
      if (std::strcmp(row.kernel, "hermitian_eig") == 0 && n == 128)
        speedup_eig_n128 = row.speedup;
      std::printf("%-14s %6zu %14.2f %12.2f %8.2fx %7s\n", row.kernel, row.n,
                  row.reference_ms, row.blocked_ms, row.speedup,
                  row.match ? "yes" : "NO");
    }
  }

  const bool deterministic = check_thread_invariance(96);
  std::printf("thread-count determinism (1 vs 2 vs 4 workers): %s\n",
              deterministic ? "bitwise identical" : "MISMATCH");

  std::vector<std::string> json_rows;
  json_rows.reserve(rows.size());
  for (const Row& r : rows)
    json_rows.push_back(bench::format(
        "{\"kernel\": \"%s\", \"n\": %zu, \"reference_ms\": %.3f, "
        "\"blocked_ms\": %.3f, \"speedup\": %.3f, \"match\": %s}",
        r.kernel, r.n, r.reference_ms, r.blocked_ms, r.speedup,
        r.match ? "true" : "false"));
  bench::write_json(json_path, "linalg_backends", smoke, json_rows,
                    {bench::format("\"speedup_eig_n128\": %.3f", speedup_eig_n128),
                     bench::format("\"deterministic\": %s",
                                   deterministic ? "true" : "false"),
                     "\"obs\": " + obs_report.json_object()});

  // Exit code gates on correctness only (value parity + thread-count
  // determinism); the speedup target is reported but not allowed to fail
  // CI on a noisy or single-core runner.
  const bool correct = all_match && deterministic;
  const bool ok = correct && speedup_eig_n128 >= 3.0;
  bench::verdict(ok, "eig n=128 speedup " + std::to_string(speedup_eig_n128) +
                         "x, values " + (all_match ? "match" : "DIFFER") + ", " +
                         (deterministic ? "thread-invariant" : "NOT thread-invariant"));
  return correct ? 0 : 1;
}
