// E3 (Sec. II): time-resolved coincidence measurement gives a signal/idler
// linewidth of 110 MHz, consistent with the ring linewidth considering
// detector time jitter.

#include <cstdio>

#include "bench_util.hpp"
#include "qfc/core/comb_source.hpp"

int main() {
  using namespace qfc;
  bench::header("E3  bench_coherence_time",
                "time-resolved coincidences -> measured linewidth 110 MHz, "
                "consistent with ring linewidth + detector jitter");

  auto comb = core::QuantumFrequencyComb::for_configuration(
      core::PumpConfiguration::SelfLockedCw);
  core::HeraldedConfig cfg;
  cfg.num_channel_pairs = 2;
  auto exp = comb.heralded(cfg);
  const auto res = exp.run_coherence_measurement(1, 300.0);

  std::printf("ring linewidth (device model):   %7.1f MHz\n",
              res.ring_linewidth_hz / 1e6);
  std::printf("fitted decay time tau:           %7.2f ns\n", res.fitted_tau_s * 1e9);
  std::printf("measured linewidth (with jitter):%7.1f MHz   (paper: 110 MHz)\n",
              res.measured_linewidth_hz / 1e6);
  std::printf("jitter-deconvolved linewidth:    %7.1f MHz\n",
              res.deconvolved_linewidth_hz / 1e6);

  std::printf("\ncoincidence histogram (0.5 ns bins, counts around dt = 0):\n");
  const auto& h = res.histogram;
  const std::size_t c = h.center_bin();
  for (std::size_t i = (c > 16 ? c - 16 : 0); i <= c + 16 && i < h.counts.size(); ++i) {
    std::printf("%+7.2f ns  %6llu  ", h.bin_time(i) * 1e9,
                static_cast<unsigned long long>(h.counts[i]));
    const int bars = static_cast<int>(60.0 * static_cast<double>(h.counts[i]) /
                                      static_cast<double>(h.counts[c] + 1));
    for (int b = 0; b < bars; ++b) std::printf("#");
    std::printf("\n");
  }

  const bool ok = res.measured_linewidth_hz > 80e6 && res.measured_linewidth_hz < 160e6;
  bench::verdict(ok, "measured linewidth within ~110 MHz band and consistent with "
                     "the 110 MHz ring linewidth after jitter deconvolution");
  return ok ? 0 : 1;
}
