// E10 (Sec. II): self-locked operation runs for weeks with < 5% fluctuation
// and no active stabilization; an externally pumped ring drifts.

#include <cstdio>

#include "bench_util.hpp"
#include "qfc/core/comb_source.hpp"
#include "qfc/detect/allan.hpp"

int main() {
  using namespace qfc;
  bench::header("E10 bench_stability",
                "self-locked scheme: weeks of continuous operation with < 5% "
                "fluctuation and no active stabilization");

  auto comb = core::QuantumFrequencyComb::for_configuration(
      core::PumpConfiguration::SelfLockedCw);
  core::StabilityConfig cfg;
  cfg.observation_days = 21.0;
  auto exp = comb.stability(cfg);
  const auto cmp = exp.run();

  std::printf("observation window: %.0f days, 1 sample/hour, thermal drift "
              "sigma=%.1f K\n\n", cfg.observation_days, cfg.temperature_rms_K);
  std::printf("%22s %16s %16s %12s\n", "scheme", "RMS fluct. (%)", "p-p fluct. (%)",
              "mean rate");
  std::printf("%22s %16.2f %16.1f %12.3f\n", "self-locked",
              cmp.self_locked.rms_fluctuation_percent,
              cmp.self_locked.peak_to_peak_percent, cmp.self_locked.mean);
  std::printf("%22s %16.2f %16.1f %12.3f\n", "external (free-run)",
              cmp.external.rms_fluctuation_percent, cmp.external.peak_to_peak_percent,
              cmp.external.mean);

  // Short excerpt of both time series (first 48 h, every 6 h).
  std::printf("\nrelative pair rate, first 48 h (every 6 h):\n");
  std::printf("%10s %14s %14s\n", "t (h)", "self-locked", "external");
  for (std::size_t i = 0; i < cmp.self_locked.time_s.size() && i < 49; i += 6)
    std::printf("%10.0f %14.3f %14.3f\n", cmp.self_locked.time_s[i] / 3600.0,
                cmp.self_locked.relative_rate[i], cmp.external.relative_rate[i]);

  // Allan-deviation view of both schemes.
  std::printf("\noverlapping Allan deviation of the relative rate:\n");
  std::printf("%12s %16s %16s\n", "tau (h)", "self-locked", "external");
  const auto a_self =
      detect::allan_curve(cmp.self_locked.relative_rate, cfg.sample_interval_s);
  const auto a_ext =
      detect::allan_curve(cmp.external.relative_rate, cfg.sample_interval_s);
  for (std::size_t i = 0; i < a_self.size() && i < a_ext.size(); ++i)
    std::printf("%12.0f %16.4f %16.4f\n", a_self[i].tau_s / 3600.0, a_self[i].sigma,
                a_ext[i].sigma);

  const bool ok = cmp.self_locked.rms_fluctuation_percent < 5.0 &&
                  cmp.external.rms_fluctuation_percent >
                      3.0 * cmp.self_locked.rms_fluctuation_percent;
  bench::verdict(ok, "self-locked < 5% RMS over 3 weeks; external pumping "
                     "fluctuates far more (who-wins shape reproduced)");
  return ok ? 0 : 1;
}
