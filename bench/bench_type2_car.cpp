// E4 (Sec. III): type-II SFWM cross-polarized coincidence peak with
// CAR ~ 10 at 2 mW pump power.

#include <cstdio>

#include "bench_util.hpp"
#include "qfc/core/comb_source.hpp"

int main() {
  using namespace qfc;
  bench::header("E4  bench_type2_car",
                "cross-polarized photon pairs: coincidence-to-accidental ratio "
                "around 10 at 2 mW pump power");

  auto comb = core::QuantumFrequencyComb::for_configuration(
      core::PumpConfiguration::CrossPolarized);
  core::Type2Config cfg;
  cfg.duration_s = 240.0;
  auto exp = comb.type2(cfg);

  std::printf("%12s %16s %12s %16s\n", "pump (mW)", "on-chip (Hz)", "CAR",
              "coinc. (Hz)");
  double car_at_2mw = 0;
  const auto sweep = exp.run_power_sweep({0.5e-3, 1e-3, 2e-3, 4e-3, 8e-3});
  for (const auto& r : sweep) {
    std::printf("%12.1f %16.2f %8.1f±%.1f %16.3f\n", r.pump_power_w * 1e3,
                r.pair_rate_on_chip_hz, r.car.car, r.car.car_err,
                r.coincidence_rate_hz);
    if (std::abs(r.pump_power_w - 2e-3) < 1e-6) car_at_2mw = r.car.car;
  }
  std::printf("CAR at 2 mW: %.1f (paper: ~10)\n", car_at_2mw);
  std::printf("stimulated FWM suppression: %.1f dB (paper: complete suppression)\n",
              exp.stimulated_suppression_db());

  const bool ok = car_at_2mw > 4 && car_at_2mw < 30;
  bench::verdict(ok, "CAR at 2 mW within a factor ~2 of the paper's ~10; clear "
                     "coincidence peak confirms spontaneous (vacuum-seeded) FWM");
  return ok ? 0 : 1;
}
