// E13 (Sec. II): "pure heralded single photons" — heralded HBT
// autocorrelation g²_h(0) << 1 at the source's operating μ, rising as ~4μ
// with pump power (the multi-pair ablation).

#include <cstdio>

#include "bench_util.hpp"
#include "qfc/core/comb_source.hpp"
#include "qfc/core/hbt.hpp"

int main() {
  using namespace qfc;
  bench::header("E13 bench_heralded_g2",
                "heralded single photons: g2_h(0) << 1 (antibunching), degrading "
                "as ~4 mu with multi-pair emission");

  // Operating point of the Sec. II source: μ per coherence window.
  auto comb = core::QuantumFrequencyComb::for_configuration(
      core::PumpConfiguration::SelfLockedCw);
  core::HeraldedConfig hcfg;
  auto hexp = comb.heralded(hcfg);
  const double mu_op = hexp.source().mean_pairs_per_coherence_time(1);
  std::printf("source operating point: mu = %.2e pairs per coherence time\n\n", mu_op);

  std::printf("%12s %14s %14s %12s %10s\n", "mu", "g2 (MC)", "g2 (analytic)",
              "triples", "heralds");
  rng::Xoshiro256 g(2014);
  bool monotone = true;
  double prev = -1;
  double g2_at_low_mu = 1;
  for (double mu : {1e-3, 5e-3, 0.02, 0.08, 0.3, 1.0}) {
    core::HbtParams p;
    p.mean_pairs_per_trial = mu;
    p.trials = (mu < 0.01) ? 8'000'000 : 1'000'000;
    const auto r = core::run_hbt(p, g);
    const double analytic = core::analytic_heralded_g2(p);
    std::printf("%12.3f %9.4f±%.4f %14.4f %12llu %10llu\n", mu, r.g2, r.g2_err,
                analytic, static_cast<unsigned long long>(r.triples),
                static_cast<unsigned long long>(r.heralds));
    if (r.g2 < prev - 0.05) monotone = false;
    prev = r.g2;
    if (mu == 1e-3) g2_at_low_mu = r.g2;
  }

  std::printf("\n(unheralded thermal arm would give g2 = 2; heralding turns the "
              "comb into a single-photon source)\n");
  const bool ok = g2_at_low_mu < 0.05 && monotone;
  bench::verdict(ok, "g2_h(0) << 1 at the operating point, rising toward the "
                     "thermal value with mu as multi-pair emission takes over");
  return ok ? 0 : 1;
}
