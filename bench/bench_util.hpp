#pragma once

// Shared formatting helpers for the reproduction benches. Each bench prints
// a header naming the paper claim, the regenerated rows, and a PASS/CHECK
// verdict on the claim's "shape" (see EXPERIMENTS.md).

#include <cstdio>
#include <string>

namespace bench {

inline void header(const char* id, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", id);
  std::printf("paper claim: %s\n", claim);
  std::printf("--------------------------------------------------------------\n");
}

inline void verdict(bool ok, const std::string& detail) {
  std::printf("--------------------------------------------------------------\n");
  std::printf("[%s] %s\n\n", ok ? "PASS" : "CHECK", detail.c_str());
}

}  // namespace bench
