#pragma once

// Shared helpers for the reproduction benches. Each bench prints a header
// naming the paper claim, the regenerated rows, and a PASS/CHECK verdict on
// the claim's "shape" (see EXPERIMENTS.md). The perf benches additionally
// emit one shared machine-readable JSON envelope ({bench, mode, rows, ...})
// so their BENCH_*.json trajectories stay schema-compatible run over run.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace bench {

inline void header(const char* id, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", id);
  std::printf("paper claim: %s\n", claim);
  std::printf("--------------------------------------------------------------\n");
}

inline void verdict(bool ok, const std::string& detail) {
  std::printf("--------------------------------------------------------------\n");
  std::printf("[%s] %s\n\n", ok ? "PASS" : "CHECK", detail.c_str());
}

/// Shared `[--smoke] [--json PATH] [--help]` parsing for the perf benches.
/// The --json default is the repo-root baseline name committed for this
/// bench (BENCH_<name>.json); CI regenerates a fresh copy under build/ and
/// gates merges with scripts/check_bench.py against the committed file.
struct Flags {
  bool smoke = false;
  std::string json_path;
};

inline Flags parse_flags(int argc, char** argv, const char* default_json) {
  Flags f;
  f.json_path = default_json;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      std::printf(
          "usage: %s [--smoke] [--json PATH]\n"
          "  --smoke      reduced sweep for CI smoke runs\n"
          "  --json PATH  write the machine-readable result envelope\n"
          "               (default: %s — the committed repo-root baseline name).\n"
          "\n"
          "CI gating (scripts/check_bench.py): local/dev runs are gated in\n"
          "absolute mode (a matched row slowing down by more than 35%% on any\n"
          "*_ms field fails); the GitHub bench job passes --ratios-only, which\n"
          "ignores absolute ms on the noisy shared runners and instead gates\n"
          "the speedup/ratio columns (e.g. the engine-vs-legacy \"speedup\" and\n"
          "the thread-scaling \"speedup_vs_1t\" rows) plus the\n"
          "identical/match/deterministic flags, which must never go false.\n"
          "Rows are matched on kernel/emission/threads/n, so the 1/2/4-worker\n"
          "thread-scaling rows gate independently.\n"
          "\n"
          "observability (qfc::obs — see src/qfc/obs/README.md):\n"
          "  QFC_OBS_TRACE=PATH    record tracing spans (engine.generate,\n"
          "                        pool.work, linalg kernels, ...) and write a\n"
          "                        Chrome trace-event JSON to PATH at exit;\n"
          "                        open it in chrome://tracing or Perfetto.\n"
          "  QFC_OBS_METRICS=PATH  record counters/gauges/histograms (per-worker\n"
          "                        busy-ns, GEMM flops, Jacobi rotations, ...)\n"
          "                        and write the registry JSON to PATH at exit.\n"
          "Either variable also embeds a run-scoped \"obs\" metrics snapshot in\n"
          "the bench's JSON envelope. Both default off; when unset the\n"
          "instrumentation is one relaxed-atomic branch and rows are unaffected.\n",
          argv[0], default_json);
      std::exit(0);
    }
    if (std::strcmp(argv[i], "--smoke") == 0) f.smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) f.json_path = argv[++i];
  }
  return f;
}

/// Write the shared JSON envelope. `rows` are pre-rendered JSON objects
/// (no trailing commas); `extra` holds zero or more pre-rendered top-level
/// members (e.g. "\"deterministic\": true") appended after the rows array.
inline void write_json(const std::string& path, const char* bench_name, bool smoke,
                       const std::vector<std::string>& rows,
                       const std::vector<std::string>& extra = {}) {
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("could not write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"mode\": \"%s\",\n  \"rows\": [\n",
               bench_name, smoke ? "smoke" : "full");
  for (std::size_t i = 0; i < rows.size(); ++i)
    std::fprintf(f, "    %s%s\n", rows[i].c_str(), i + 1 < rows.size() ? "," : "");
  std::fprintf(f, "  ]");
  for (const auto& e : extra) std::fprintf(f, ",\n  %s", e.c_str());
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

/// snprintf into a std::string, for rendering JSON rows/members.
template <class... Ts>
std::string format(const char* fmt, Ts... args) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  return std::string(buf);
}

}  // namespace bench
