// E14 (Sec. V design requirement): "the generated photons have the same
// bandwidth as the pump field" — heralded-photon spectral purity vs the
// pump-bandwidth / ring-linewidth ratio, plus the dispersion budget that
// sets the usable comb width per device.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "qfc/photonics/constants.hpp"
#include "qfc/photonics/device_presets.hpp"
#include "qfc/photonics/dispersion.hpp"
#include "qfc/sfwm/jsa.hpp"

int main() {
  using namespace qfc;
  bench::header("E14 bench_purity_ablation",
                "Sec. V condition: photons with the same bandwidth as the pump "
                "-> separable JSA -> pure heralded photons / indistinguishable "
                "temporal modes for multi-photon states");

  const double lw = 820e6;  // entanglement device linewidth
  std::printf("ring linewidth: %.0f MHz (entanglement device)\n\n", lw / 1e6);
  std::printf("%22s %12s %16s %14s %18s\n", "pump BW / linewidth", "purity",
              "Schmidt number", "entropy (bit)", "photon BW / pump");

  // Sample the whole sweep first, then Schmidt-decompose every JSA in one
  // batch call so the SVDs fan out across the linalg worker pool.
  const std::vector<double> ratios = {0.05, 0.1, 0.25, 0.5, 1.0,
                                      1.5,  2.0, 4.0,  8.0, 16.0};
  std::vector<sfwm::JsaParams> params;
  std::vector<linalg::CMat> jsas;
  for (double ratio : ratios) {
    sfwm::JsaParams p;
    p.pump_bandwidth_hz = ratio * lw;
    p.ring_linewidth_s_hz = lw;
    p.ring_linewidth_i_hz = lw;
    p.grid_points = 96;
    params.push_back(p);
    jsas.push_back(sfwm::sample_jsa(p));
  }
  const auto results = sfwm::schmidt_decompose_batch(jsas);

  double purity_narrow = 1, purity_matched = 0, bw_ratio_matched = 0;
  bool purity_monotone = true;
  double prev_purity = 0;
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    const double ratio = ratios[i];
    const auto& r = results[i];
    const double photon_bw = sfwm::marginal_fwhm_hz(params[i]);
    std::printf("%22.2f %12.3f %16.2f %14.3f %18.2f\n", ratio, r.purity,
                r.schmidt_number, r.entropy_bits,
                photon_bw / params[i].pump_bandwidth_hz);
    if (r.purity < prev_purity - 0.02) purity_monotone = false;
    prev_purity = r.purity;
    if (ratio == 0.05) purity_narrow = r.purity;
    if (ratio == 1.0) {
      purity_matched = r.purity;
      bw_ratio_matched = photon_bw / params[i].pump_bandwidth_hz;
    }
  }
  std::printf("\npurity rises toward separability with pump bandwidth, but the\n"
              "photon/pump bandwidth match (Sec. V indistinguishability condition)\n"
              "holds only near pump BW ≈ ring linewidth: there purity is already "
              "%.2f\nwith photon BW = %.2fx pump BW.\n",
              purity_matched, bw_ratio_matched);

  // Device dispersion budget: how many channel pairs stay phase-matched.
  std::printf("\nusable comb width (pairs with mismatch < linewidth/2):\n");
  struct Row {
    const char* name;
    photonics::MicroringResonator ring;
  } rows[] = {
      {"heralded (110 MHz)", photonics::heralded_source_device()},
      {"entanglement (820 MHz)", photonics::entanglement_device()},
      {"type-II (80 MHz)", photonics::type2_device()},
  };
  for (const auto& row : rows) {
    const auto prof =
        photonics::dispersion_profile(row.ring, photonics::itu_anchor_hz, 20);
    std::printf("%24s: D2 = %+8.0f kHz, phase-matched pairs >= %d\n", row.name,
                prof.d2_hz / 1e3,
                photonics::phase_matched_pair_count(row.ring, photonics::itu_anchor_hz,
                                                    60));
  }

  const bool ok = purity_monotone && purity_narrow < 0.6 && purity_matched > 0.8 &&
                  bw_ratio_matched > 0.5 && bw_ratio_matched < 2.0;
  bench::verdict(ok, "narrow pumps entangle the spectrum (low purity); at matched "
                     "bandwidth the photons are near-pure AND pump-matched — the "
                     "paper's temporal-mode indistinguishability condition");
  return ok ? 0 : 1;
}
