// E2 (Sec. II): at 15 mW pump, CAR between 12.8 and 32.4 and pair rates
// between 14 and 29 Hz per channel, simultaneously on all 5 channel pairs.
// Includes the DESIGN.md ablation: CAR vs coincidence-window width.

#include <cstdio>

#include "bench_util.hpp"
#include "qfc/core/comb_source.hpp"

int main() {
  using namespace qfc;
  bench::header("E2  bench_car_rates",
                "15 mW pump: CAR in [12.8, 32.4], pair rates in [14, 29] Hz per "
                "channel (all channels simultaneously)");

  auto comb = core::QuantumFrequencyComb::for_configuration(
      core::PumpConfiguration::SelfLockedCw);
  core::HeraldedConfig cfg;
  cfg.duration_s = 120.0;
  cfg.num_channel_pairs = 5;
  auto exp = comb.heralded(cfg);

  std::printf("%8s %14s %12s %14s %14s\n", "channel", "pair rate (Hz)", "CAR",
              "singles S (Hz)", "singles I (Hz)");
  const auto table = exp.run_channel_table();
  double min_rate = 1e18, max_rate = 0, min_car = 1e18, max_car = 0;
  for (const auto& r : table) {
    std::printf("%8d %14.1f %9.1f±%.1f %14.0f %14.0f\n", r.k, r.coincidence_rate_hz,
                r.car, r.car_err, r.singles_signal_hz, r.singles_idler_hz);
    min_rate = std::min(min_rate, r.coincidence_rate_hz);
    max_rate = std::max(max_rate, r.coincidence_rate_hz);
    min_car = std::min(min_car, r.car);
    max_car = std::max(max_car, r.car);
  }
  std::printf("measured: rates %.1f-%.1f Hz (paper 14-29), CAR %.1f-%.1f "
              "(paper 12.8-32.4)\n", min_rate, max_rate, min_car, max_car);

  // Ablation: CAR vs coincidence window (wider window -> more accidentals).
  std::printf("\nablation: CAR vs coincidence window (channel averages)\n");
  std::printf("%14s %10s\n", "window (ns)", "CAR");
  double prev_car = 1e18;
  bool monotone = true;
  for (double win_ns : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    core::HeraldedConfig acfg = cfg;
    acfg.duration_s = 45.0;
    acfg.coincidence_window_s = win_ns * 1e-9;
    auto aexp = comb.heralded(acfg);
    const auto atab = aexp.run_channel_table();
    double mean_car = 0;
    for (const auto& r : atab) mean_car += r.car;
    mean_car /= static_cast<double>(atab.size());
    std::printf("%14.0f %10.1f\n", win_ns, mean_car);
    if (win_ns >= 8.0) {  // once the window covers the peak, CAR must fall
      if (mean_car > prev_car * 1.15) monotone = false;
      prev_car = mean_car;
    }
  }

  // Ablation: CAR and rate vs pump power (quadratic rate growth; CAR rises
  // out of the dark-count floor and saturates once photon singles dominate).
  std::printf("\nablation: channel-1 rate and CAR vs pump power\n");
  std::printf("%12s %16s %10s\n", "power (mW)", "pair rate (Hz)", "CAR");
  double prev_rate = 0;
  bool quadratic = true;
  for (double mw : {7.5, 15.0, 30.0}) {
    core::HeraldedConfig pcfg = cfg;
    pcfg.duration_s = 45.0;
    pcfg.pump_power_w = mw * 1e-3;
    pcfg.num_channel_pairs = 1;
    auto pexp = comb.heralded(pcfg);
    const auto ptab = pexp.run_channel_table();
    std::printf("%12.1f %16.1f %10.1f\n", mw, ptab[0].coincidence_rate_hz,
                ptab[0].car);
    if (prev_rate > 0) {
      const double ratio = ptab[0].coincidence_rate_hz / prev_rate;
      if (ratio < 2.5 || ratio > 6.0) quadratic = false;  // expect ~4x per doubling
    }
    prev_rate = ptab[0].coincidence_rate_hz;
  }
  if (!quadratic) std::printf("(warning: rate growth deviates from quadratic)\n");

  const bool rates_ok = min_rate > 7 && max_rate < 60;
  const bool car_ok = min_car > 6 && max_car < 65;
  bench::verdict(rates_ok && car_ok && monotone,
                 "rates and CAR in (loosened) paper bands; CAR falls once the "
                 "window exceeds the coincidence peak");
  return (rates_ok && car_ok) ? 0 : 1;
}
