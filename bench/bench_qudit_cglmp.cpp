// EQ1: frequency-bin qudit CGLMP sweep. The comb's symmetric channel pairs
// carry a d-level entangled state (Kues et al. 2020 review; Maltese et al.
// 2019 symmetry control); the CGLMP inequality generalizes CHSH with a
// local bound of 2 for every d. Sweeps d = 2..8 reporting the exact
// violation, a count-based estimate, the EOM analyzer efficiency, and the
// wall-clock of CGLMP evaluation plus (for prime d) a full MUB
// maximum-likelihood reconstruction.

#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "qfc/photonics/device_presets.hpp"
#include "qfc/qudit/cglmp.hpp"
#include "qfc/qudit/freq_bin_source.hpp"
#include "qfc/qudit/measurement.hpp"
#include "qfc/qudit/mub.hpp"
#include "qfc/sfwm/pair_source.hpp"

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  using namespace qfc;
  bench::header("EQ1 bench_qudit_cglmp",
                "frequency-bin qudits from the comb violate the d-dimensional "
                "CGLMP inequality (local bound 2) for all d; violation grows "
                "with d and survives realistic count statistics");

  // Comb-backed source: the entanglement device's CW pair rates set the
  // unshaped bin amplitudes; procrustean flattening gives |Φ_d⟩.
  const auto ring = photonics::entanglement_device();
  photonics::CwPump pump;
  pump.power_w = 0.01;
  pump.frequency_hz = photonics::pump_resonance_hz(ring);
  const sfwm::CwPairSource cw(ring, pump, 8);

  rng::Xoshiro256 g(20260728);
  std::printf("%4s %10s %12s %16s %10s %12s %12s\n", "d", "I_d exact", "I_d counts",
              "sigma_above_2", "EOM eff", "CGLMP ms", "MUB MLE ms");

  bool all_violate = true;
  double prev = 0;
  bool monotone = true;
  for (std::size_t d = 2; d <= 8; ++d) {
    const auto src = qudit::FreqBinSource::from_cw_source(cw, d);
    const qudit::DDensityMatrix rho(src.flattened_state());

    auto t0 = std::chrono::steady_clock::now();
    const double exact = qudit::cglmp_value(rho);
    const double cglmp_ms = ms_since(t0);

    const auto meas = qudit::measure_cglmp(rho, 50000, 2.0, g);

    // Hardware reality check: the Bessel sideband envelope of the EOM
    // analyzer for a uniform superposition target.
    const qudit::FreqBinAnalyzer analyzer(d);
    const double eff =
        analyzer.projection_efficiency(analyzer.fourier_vector(0, 0.0));

    double mle_ms = -1;
    if (qudit::is_prime(d)) {
      t0 = std::chrono::steady_clock::now();
      const auto data = qudit::simulate_mub_counts(rho, 20000, g);
      tomo::MleOptions opts;
      opts.convergence_tol = 1e-6;
      const auto mle = qudit::mub_maximum_likelihood(data, d, 2, opts);
      mle_ms = ms_since(t0);
      if (!mle.converged) std::printf("  (warning: d=%zu MLE did not converge)\n", d);
    }

    if (mle_ms >= 0)
      std::printf("%4zu %10.5f %9.3f±%.3f %13.1f %13.3f %12.2f %12.1f\n", d, exact,
                  meas.i_value, meas.i_err, meas.sigmas_above_classical(), eff,
                  cglmp_ms, mle_ms);
    else
      std::printf("%4zu %10.5f %9.3f±%.3f %13.1f %13.3f %12.2f %12s\n", d, exact,
                  meas.i_value, meas.i_err, meas.sigmas_above_classical(), eff,
                  cglmp_ms, "n/a");

    all_violate &= exact > qudit::cglmp_classical_bound() && meas.violates_classical();
    monotone &= exact > prev;
    prev = exact;
  }

  // Ablation: violation vs isotropic-noise visibility at d = 4 — the noise
  // threshold rises slowly with d (the CGLMP robustness argument).
  std::printf("\nablation: I_4 vs visibility (classical bound 2)\n");
  const qudit::DState phi4 = qudit::DState::maximally_entangled(4);
  for (double v : {1.0, 0.9, 0.8, 0.7, 0.69, 0.6})
    std::printf("  V = %.2f -> I_4 = %.4f\n", v,
                qudit::cglmp_value(qudit::isotropic_noise(phi4, v)));

  // Ablation: unshaped (brightness-weighted) vs flattened bins at d = 6.
  const auto src6 = qudit::FreqBinSource::from_cw_source(cw, 6);
  std::printf("\nablation: amplitude shaping at d = 6\n");
  std::printf("  unshaped:  K = %.3f, I_6 = %.4f\n", src6.schmidt_number(),
              qudit::cglmp_value(qudit::DDensityMatrix(src6.state())));
  std::printf("  flattened: K = %.3f, I_6 = %.4f (post-selection eff. %.3f)\n",
              qudit::schmidt_number(src6.flattened_state()),
              qudit::cglmp_value(qudit::DDensityMatrix(src6.flattened_state())),
              src6.shaping_efficiency(src6.flattening_mask()));

  bench::verdict(all_violate && monotone,
                 "CGLMP violated for d = 2..8 with monotone growth; counts agree");
  return (all_violate && monotone) ? 0 : 1;
}
