#!/usr/bin/env python3
"""Perf-regression gate for the BENCH_*.json envelopes.

Compares a freshly produced bench JSON against the committed baseline.

Absolute mode (default, for local/dev-container runs where the baseline was
recorded on the same hardware) fails (exit 1) when:

  * any row matched between baseline and candidate slowed down by more than
    --max-slowdown (default 0.35 = 35%) on any ``*_ms`` field whose baseline
    value is at least --min-ms (tiny rows are all timer noise), or
  * any correctness flag (``identical``, ``match``, ``deterministic``,
    ``eig_n128_blocked_wins``, ``bounded_rss`` — the last asserting the
    streaming engine's flat-RSS claim across a 10x run-length increase) is
    false in the candidate — per row or top-level, regardless of the
    baseline, or
  * a baseline row has no matching candidate row (coverage regression).

Ratio mode (``--ratios-only``, used by the GitHub ``bench`` job) ignores the
absolute ``*_ms`` fields entirely — shared-runner hardware is not the
hardware the baselines were recorded on, so absolute timings only flake.
Instead it gates on what stays meaningful across machines:

  * ratio columns (``speedup``, ``speedup_*``, ``*_ratio``), per row and
    top-level: a candidate ratio falling below
    baseline * (1 - --max-ratio-drop) (default 0.5 = may halve) fails —
    catching e.g. the batched engine collapsing back to legacy speed or the
    sharded analysis sweep losing its multi-worker scaling. Rows whose
    baseline ``*_ms`` fields all sit below --min-ms are skipped: a ratio of
    two sub-noise-floor timings is itself timer noise, and

  * the same correctness-flag and missing-row checks as absolute mode.

Rows are matched on the stable identity fields (``kernel``, ``emission``,
``threads``, ``n``); extra candidate rows (new coverage) only warn. Extra
fields are ignored by the gate. Observability fields the benches emit —
``events_per_sec``/``max_rss_kb`` row columns and the run-scoped ``obs``
metrics snapshot (see src/qfc/obs/README.md) — are *surfaced* as info lines
but never gated: they are context for reading a regression, not a gate.
stdlib only — runs anywhere python3 exists.

Usage:
  scripts/check_bench.py BASELINE CANDIDATE [--max-slowdown 0.35]
      [--min-ms 1.0] [--ratios-only] [--max-ratio-drop 0.5]

CI wiring (.github/workflows/ci.yml, ``bench`` job): the smoke benches write
fresh envelopes under build/ and this script gates them with --ratios-only
against the committed repo-root baselines. The same knobs are documented in
the benches' ``--help``.
"""

import argparse
import json
import sys

KEY_FIELDS = ("kernel", "emission", "mode", "threads", "n")
FLAG_FIELDS = (
    "identical",
    "match",
    "deterministic",
    "eig_n128_blocked_wins",
    "bounded_rss",
)


def row_key(row):
    return tuple((k, row[k]) for k in KEY_FIELDS if k in row)


def fmt_key(key):
    return ", ".join(f"{k}={v}" for k, v in key) or "<unkeyed>"


def is_ratio_field(name):
    return name == "speedup" or name.startswith("speedup_") or name.endswith("_ratio")


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"check_bench: cannot read {path}: {e}")
    if "rows" not in doc or not isinstance(doc["rows"], list):
        sys.exit(f"check_bench: {path} has no rows array")
    return doc


def has_solid_timing(row, min_ms):
    """True when the row's ratios rest on timings above the noise floor: at
    least one baseline ``*_ms`` field reaches min_ms (a ratio of two
    microsecond-scale timings is as noisy as the timings themselves). Rows
    carrying no ``*_ms`` fields at all (e.g. the top-level envelope, whose
    ratios summarize well-timed rows) pass."""
    ms_fields = [
        v
        for k, v in row.items()
        if k.endswith("_ms") and isinstance(v, (int, float)) and not isinstance(v, bool)
    ]
    return not ms_fields or any(v >= min_ms for v in ms_fields)


def compare_fields(key_label, brow, crow, args, errors):
    """Per-field gate for one matched baseline/candidate row pair (also used
    for the top-level envelope members, with key_label = '<top-level>')."""
    ratio_rows_gated = has_solid_timing(brow, args.min_ms)
    for field, bval in brow.items():
        if not isinstance(bval, (int, float)) or isinstance(bval, bool):
            continue
        cval = crow.get(field)
        if not isinstance(cval, (int, float)) or isinstance(cval, bool):
            continue
        if args.ratios_only:
            if not is_ratio_field(field) or bval <= 0 or not ratio_rows_gated:
                continue
            drop = 1.0 - cval / bval
            if drop > args.max_ratio_drop:
                errors.append(
                    f"row [{key_label}]: {field} {bval:.3f} -> {cval:.3f} "
                    f"(-{100.0 * drop:.0f}% > {100.0 * args.max_ratio_drop:.0f}%)"
                )
        else:
            if not field.endswith("_ms") or bval < args.min_ms:
                continue  # non-timing or sub-threshold (timer noise) field
            slowdown = cval / bval - 1.0
            if slowdown > args.max_slowdown:
                errors.append(
                    f"row [{key_label}]: {field} {bval:.3f} -> {cval:.3f} ms "
                    f"(+{100.0 * slowdown:.0f}% > {100.0 * args.max_slowdown:.0f}%)"
                )


def surface_observability(cand):
    """Render the candidate's non-gated observability fields as info lines:
    throughput/RSS ranges across rows plus a one-line digest of the embedded
    ``obs`` metrics snapshot. Purely informational — never produces errors."""
    lines = []
    eps = [
        r["events_per_sec"]
        for r in cand["rows"]
        if isinstance(r.get("events_per_sec"), (int, float))
        and not isinstance(r.get("events_per_sec"), bool)
    ]
    if eps:
        lines.append(
            f"throughput {min(eps):,.0f} .. {max(eps):,.0f} events/s across "
            f"{len(eps)} rows"
        )
    rss = [
        r["max_rss_kb"]
        for r in cand["rows"]
        if isinstance(r.get("max_rss_kb"), (int, float))
        and not isinstance(r.get("max_rss_kb"), bool)
    ]
    top_rss = cand.get("max_rss_kb")
    if isinstance(top_rss, (int, float)) and not isinstance(top_rss, bool):
        rss.append(top_rss)
    if rss:
        lines.append(f"peak RSS {max(rss):,.0f} KB")
    obs = cand.get("obs")
    if isinstance(obs, dict):
        counters = obs.get("counters") or {}
        if obs.get("enabled") and counters:
            busy = sum(
                v for k, v in counters.items() if k.startswith("parallel.worker_busy_ns.")
            )
            digest = f"obs snapshot: {len(counters)} counters"
            if busy:
                digest += f", total worker busy {busy / 1e6:,.0f} ms"
            flops = sum(v for k, v in counters.items() if k.endswith(".gemm.flops"))
            if flops:
                digest += f", {flops:,} gemm flops"
            lines.append(digest)
        else:
            lines.append("obs snapshot present but disabled (set QFC_OBS_METRICS)")
    return lines


def check(args):
    base = load(args.baseline)
    cand = load(args.candidate)
    errors = []
    warnings = []

    cand_rows = {}
    for row in cand["rows"]:
        cand_rows[row_key(row)] = row

    # Correctness flags must hold in the candidate no matter what the
    # baseline says — a flipped flag is a bug, not a perf regression.
    for name in FLAG_FIELDS:
        if cand.get(name) is False:
            errors.append(f"top-level flag '{name}' is false in {args.candidate}")
    for key, row in cand_rows.items():
        for name in FLAG_FIELDS:
            if row.get(name) is False:
                errors.append(f"row [{fmt_key(key)}]: flag '{name}' is false")

    matched = 0
    for brow in base["rows"]:
        key = row_key(brow)
        crow = cand_rows.get(key)
        if crow is None:
            errors.append(f"row [{fmt_key(key)}] missing from {args.candidate}")
            continue
        matched += 1
        compare_fields(fmt_key(key), brow, crow, args, errors)
    if args.ratios_only:
        # Top-level ratio members (speedup_n10, ...) gate too.
        compare_fields("<top-level>", base, cand, args, errors)

    base_keys = {row_key(r) for r in base["rows"]}
    for key in cand_rows:
        if key not in base_keys:
            warnings.append(f"row [{fmt_key(key)}] is new (not in baseline)")

    name = base.get("bench", args.baseline)
    for line in surface_observability(cand):
        print(f"check_bench[{name}]: info: {line}")
    for w in warnings:
        print(f"check_bench[{name}]: warning: {w}")
    for e in errors:
        print(f"check_bench[{name}]: FAIL: {e}")
    if not errors:
        if args.ratios_only:
            print(
                f"check_bench[{name}]: OK — {matched} matched rows, ratio columns "
                f"within {100.0 * args.max_ratio_drop:.0f}% of baseline, all flags true"
            )
        else:
            print(
                f"check_bench[{name}]: OK — {matched} matched rows within "
                f"{100.0 * args.max_slowdown:.0f}% of baseline, all flags true"
            )
    return not errors


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline BENCH_*.json")
    parser.add_argument("candidate", help="freshly produced BENCH_*.json")
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=0.35,
        help="maximum allowed per-row relative slowdown (default 0.35 = 35%%)",
    )
    parser.add_argument(
        "--min-ms",
        type=float,
        default=1.0,
        help="ignore *_ms fields whose baseline value is below this (noise floor)",
    )
    parser.add_argument(
        "--ratios-only",
        action="store_true",
        help="gate on speedup/ratio columns and correctness flags instead of "
        "absolute ms (for CI runners whose hardware differs from the baseline's)",
    )
    parser.add_argument(
        "--max-ratio-drop",
        type=float,
        default=0.5,
        help="with --ratios-only: maximum allowed relative drop of a ratio "
        "column vs baseline (default 0.5 = the ratio may halve)",
    )
    args = parser.parse_args()
    sys.exit(0 if check(args) else 1)


if __name__ == "__main__":
    main()
