#!/usr/bin/env python3
"""Perf-regression gate for the BENCH_*.json envelopes.

Compares a freshly produced bench JSON against the committed baseline and
fails (exit 1) when:

  * any row matched between baseline and candidate slowed down by more than
    --max-slowdown (default 0.35 = 35%) on any ``*_ms`` field whose baseline
    value is at least --min-ms (tiny rows are all timer noise), or
  * any correctness flag (``identical``, ``match``, ``deterministic``) is
    false in the candidate — per row or top-level, regardless of the
    baseline, or
  * a baseline row has no matching candidate row (coverage regression).

Rows are matched on the stable identity fields (``kernel``, ``emission``,
``n``); extra candidate rows (new coverage) only warn. Speedups and extra
fields are ignored. stdlib only — runs anywhere python3 exists.

Usage:
  scripts/check_bench.py BASELINE CANDIDATE [--max-slowdown 0.35] [--min-ms 1.0]

CI wiring (.github/workflows/ci.yml, ``bench`` job): the smoke benches write
fresh envelopes under build/ and this script gates them against the
committed repo-root baselines. The same knob is documented in the benches'
``--help``.
"""

import argparse
import json
import sys

KEY_FIELDS = ("kernel", "emission", "mode", "n")
FLAG_FIELDS = ("identical", "match", "deterministic")


def row_key(row):
    return tuple((k, row[k]) for k in KEY_FIELDS if k in row)


def fmt_key(key):
    return ", ".join(f"{k}={v}" for k, v in key) or "<unkeyed>"


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"check_bench: cannot read {path}: {e}")
    if "rows" not in doc or not isinstance(doc["rows"], list):
        sys.exit(f"check_bench: {path} has no rows array")
    return doc


def check(baseline_path, candidate_path, max_slowdown, min_ms):
    base = load(baseline_path)
    cand = load(candidate_path)
    errors = []
    warnings = []

    cand_rows = {}
    for row in cand["rows"]:
        cand_rows[row_key(row)] = row

    # Correctness flags must hold in the candidate no matter what the
    # baseline says — a flipped flag is a bug, not a perf regression.
    for name in FLAG_FIELDS:
        if cand.get(name) is False:
            errors.append(f"top-level flag '{name}' is false in {candidate_path}")
    for key, row in cand_rows.items():
        for name in FLAG_FIELDS:
            if row.get(name) is False:
                errors.append(f"row [{fmt_key(key)}]: flag '{name}' is false")

    matched = 0
    for brow in base["rows"]:
        key = row_key(brow)
        crow = cand_rows.get(key)
        if crow is None:
            errors.append(f"row [{fmt_key(key)}] missing from {candidate_path}")
            continue
        matched += 1
        for field, bval in brow.items():
            if not field.endswith("_ms") or not isinstance(bval, (int, float)):
                continue
            cval = crow.get(field)
            if not isinstance(cval, (int, float)):
                continue
            if bval < min_ms:
                continue  # sub-threshold rows are timer noise
            slowdown = cval / bval - 1.0
            if slowdown > max_slowdown:
                errors.append(
                    f"row [{fmt_key(key)}]: {field} {bval:.3f} -> {cval:.3f} ms "
                    f"(+{100.0 * slowdown:.0f}% > {100.0 * max_slowdown:.0f}%)"
                )

    base_keys = {row_key(r) for r in base["rows"]}
    for key in cand_rows:
        if key not in base_keys:
            warnings.append(f"row [{fmt_key(key)}] is new (not in baseline)")

    name = base.get("bench", baseline_path)
    for w in warnings:
        print(f"check_bench[{name}]: warning: {w}")
    for e in errors:
        print(f"check_bench[{name}]: FAIL: {e}")
    if not errors:
        print(
            f"check_bench[{name}]: OK — {matched} matched rows within "
            f"{100.0 * max_slowdown:.0f}% of baseline, all flags true"
        )
    return not errors


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline BENCH_*.json")
    parser.add_argument("candidate", help="freshly produced BENCH_*.json")
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=0.35,
        help="maximum allowed per-row relative slowdown (default 0.35 = 35%%)",
    )
    parser.add_argument(
        "--min-ms",
        type=float,
        default=1.0,
        help="ignore *_ms fields whose baseline value is below this (noise floor)",
    )
    args = parser.parse_args()
    ok = check(args.baseline, args.candidate, args.max_slowdown, args.min_ms)
    sys.exit(0 if ok else 1)


if __name__ == "__main__":
    main()
